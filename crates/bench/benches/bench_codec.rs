//! Criterion benchmarks for the cell codec and onion layering (P1 in
//! DESIGN.md §5) — the per-cell costs a real relay implementation would
//! pay on its fast path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use torcell::prelude::*;

fn bench_cell_codec(c: &mut Criterion) {
    let cell = Cell::relay_data(CircuitId(7), StreamId(1), vec![0xAB; RELAY_DATA_MAX]);
    let wire = encode_cell(&cell);

    let mut group = c.benchmark_group("torcell/codec");
    group.throughput(Throughput::Bytes(CELL_LEN as u64));
    group.bench_function("encode_data_cell", |b| {
        b.iter(|| encode_cell(&cell));
    });
    group.bench_function("decode_data_cell", |b| {
        b.iter(|| decode_cell(&wire).expect("valid"));
    });
    group.finish();
}

fn bench_feedback_codec(c: &mut Criterion) {
    let fb = Feedback {
        circ: CircuitId(9),
        seq: 123_456,
    };
    let wire = encode_feedback(&fb);
    let mut group = c.benchmark_group("torcell/feedback");
    group.throughput(Throughput::Bytes(FEEDBACK_WIRE_LEN as u64));
    group.bench_function("encode", |b| b.iter(|| encode_feedback(&fb)));
    group.bench_function("decode", |b| b.iter(|| decode_feedback(&wire).expect("valid")));
    group.finish();
}

fn bench_onion_layers(c: &mut Criterion) {
    let mut group = c.benchmark_group("torcell/onion");
    group.throughput(Throughput::Bytes(RELAY_DATA_MAX as u64));
    group.bench_function("wrap_3_hops_and_strip", |b| {
        let keys = [LayerKey(11), LayerKey(22), LayerKey(33)];
        b.iter(|| {
            let mut route = OnionRoute::new();
            let mut relays: Vec<RelayCrypt> = keys
                .iter()
                .map(|&k| {
                    route.push_layer(k);
                    RelayCrypt::new(k)
                })
                .collect();
            let mut cell = RelayCell::data(StreamId(1), vec![0x5A; RELAY_DATA_MAX]);
            route.wrap_for_hop(2, &mut cell);
            for relay in &mut relays {
                if relay.strip_forward(&mut cell) {
                    break;
                }
            }
            assert!(cell.digest_ok());
        });
    });
    group.finish();
}

criterion_group!(benches, bench_cell_codec, bench_feedback_codec, bench_onion_layers);
criterion_main!(benches);
