// cs-lint-fixture: path = "crates/netsim/src/ok_scoping.rs"
// netsim is not fingerprint-visible: unordered maps are legal here
// (policy exemption, not annotation). ZERO findings.
use std::collections::{HashMap, HashSet};

fn topology_scratch() -> (HashMap<u64, u64>, HashSet<u64>) {
    (HashMap::new(), HashSet::new())
}
