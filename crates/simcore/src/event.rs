//! The pending-event queue.
//!
//! Two interchangeable implementations sit behind the [`PendingEvents`]
//! trait seam, selected by [`QueueKind`] and wrapped in the [`EventQueue`]
//! facade the simulator owns:
//!
//! * [`CalendarQueue`] (the default) — a Brown-style calendar queue: a
//!   power-of-two ring of unsorted buckets, each covering `width`
//!   nanoseconds of virtual time, with the bucket count and width
//!   adapting to the live population. Scheduling is O(1) (compute the
//!   bucket, append), cancellation is O(1) expected (a dense id-window
//!   index finds the bucket, see below), and dequeue is amortized O(1)
//!   for the short-horizon timer churn that dominates overlay runs.
//! * [`HeapQueue`] — the original stable binary heap, kept as the
//!   differential oracle: property tests assert both implementations
//!   produce identical `(time, id, event)` pop sequences.
//!
//! Both are *stable* min-priority queues keyed on [`SimTime`]: events
//! scheduled for the same instant pop in push order (FIFO tie-breaking by
//! the monotonically increasing sequence number that doubles as the
//! [`EventId`]). Stability is what makes the whole simulator
//! deterministic.
//!
//! # Cancellation without tombstones
//!
//! Event ids are dense and monotone, so the calendar queue maps every id
//! in the window `[base_id, next_seq)` to its bucket through a plain
//! `VecDeque` — no hash map, no tombstone set. Cancelling removes the
//! entry from its bucket immediately; cancelling an id that already fired
//! is a detectable no-op. The window head advances as the oldest ids
//! retire, so memory is bounded by the id span of *pending* events, not
//! by run length (the leak the old `Simulator`-side tombstone set had).

// cs-lint: allow(nondeterministic-iteration, reason = "legacy HeapQueue membership sets, see field docs")
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// Identifier of a scheduled event, unique within one simulation run.
///
/// Returned by [`EventQueue::push`] so callers can later cancel the event
/// (see [`crate::sim::Simulator::cancel`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(pub(crate) u64);

impl EventId {
    /// The raw sequence number.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// Which pending-event structure a queue uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum QueueKind {
    /// The calendar queue (default; O(1) schedule/cancel).
    #[default]
    Calendar,
    /// The legacy stable binary heap (differential oracle).
    BinaryHeap,
}

/// The seam between the simulator loop and the pending-event structure:
/// a stable time-ordered queue with cancellation.
///
/// Implementations must pop in strictly non-decreasing `(time, id)`
/// order, break time ties by push order, and never yield a cancelled
/// event.
pub trait PendingEvents<E> {
    /// Schedules `event` at absolute `time`; returns a fresh monotone id.
    fn push(&mut self, time: SimTime, event: E) -> EventId;
    /// Removes and returns the earliest live event.
    fn pop(&mut self) -> Option<(SimTime, EventId, E)>;
    /// The timestamp of the earliest live event, if any. Takes `&mut
    /// self` so implementations may discard dead entries or refresh a
    /// cached minimum.
    fn peek_time(&mut self) -> Option<SimTime>;
    /// Cancels a pending event; returns `false` (and does nothing) if the
    /// id already fired, was already cancelled, or was discarded.
    fn cancel(&mut self, id: EventId) -> bool;
    /// Number of live pending events.
    fn len(&self) -> usize;
    /// `true` if no live events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Largest number of simultaneously pending events observed.
    fn high_water_mark(&self) -> usize;
    /// Total number of events ever pushed.
    fn pushed_total(&self) -> u64;
    /// Discards all pending events; the id counter keeps advancing.
    fn clear(&mut self);
}

// ---------------------------------------------------------------------
// HeapQueue — the legacy binary heap, kept as the differential oracle.
// ---------------------------------------------------------------------

struct Entry<E> {
    time: SimTime,
    id: EventId,
    event: E,
}

// Order entries so that the *earliest* (time, id) pair is the heap maximum,
// because `BinaryHeap` is a max-heap.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.id == other.id
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: smaller (time, id) compares greater.
        (other.time, other.id).cmp(&(self.time, self.id))
    }
}

/// The original `BinaryHeap`-backed stable queue.
///
/// Cancellation is tombstone-based internally, but leak-free: a `live`
/// set distinguishes pending ids, so cancelling a fired id is a no-op
/// that stores nothing, and [`HeapQueue::clear`] drops tombstones along
/// with the entries they referenced. Kept primarily as the differential
/// oracle for [`CalendarQueue`]; performance is not a goal here.
pub struct HeapQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    // cs-lint: allow(nondeterministic-iteration, reason = "membership-only: insert/remove/contains, never iterated, so hash order cannot reach pop order")
    /// Ids currently pending (pushed, not yet popped or cancelled).
    live: HashSet<u64>,
    // cs-lint: allow(nondeterministic-iteration, reason = "membership-only: insert/remove/contains, never iterated, so hash order cannot reach pop order")
    /// Ids cancelled while pending; their heap entries are skipped on pop.
    cancelled: HashSet<u64>,
    next_seq: u64,
    high_water: usize,
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue with space for `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        HeapQueue {
            heap: BinaryHeap::with_capacity(cap),
            // cs-lint: allow(nondeterministic-iteration, reason = "constructing the membership-only sets documented on the fields")
            live: HashSet::new(),
            // cs-lint: allow(nondeterministic-iteration, reason = "constructing the membership-only sets documented on the fields")
            cancelled: HashSet::new(),
            next_seq: 0,
            high_water: 0,
        }
    }

    /// Drops dead entries off the top of the heap.
    fn skim(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.remove(&top.id.0) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

impl<E> PendingEvents<E> for HeapQueue<E> {
    fn push(&mut self, time: SimTime, event: E) -> EventId {
        let id = EventId(self.next_seq);
        self.next_seq += 1;
        self.heap.push(Entry { time, id, event });
        self.live.insert(id.0);
        self.high_water = self.high_water.max(self.live.len());
        id
    }

    fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        self.skim();
        let e = self.heap.pop()?;
        self.live.remove(&e.id.0);
        Some((e.time, e.id, e.event))
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        self.skim();
        self.heap.peek().map(|e| e.time)
    }

    fn cancel(&mut self, id: EventId) -> bool {
        if self.live.remove(&id.0) {
            self.cancelled.insert(id.0);
            true
        } else {
            false
        }
    }

    fn len(&self) -> usize {
        self.live.len()
    }

    fn high_water_mark(&self) -> usize {
        self.high_water
    }

    fn pushed_total(&self) -> u64 {
        self.next_seq
    }

    fn clear(&mut self) {
        self.heap.clear();
        self.live.clear();
        self.cancelled.clear();
    }
}

// ---------------------------------------------------------------------
// CalendarQueue — the default structure.
// ---------------------------------------------------------------------

/// Sentinel in the id-window index: this id is no longer pending.
const NOT_PENDING: u32 = u32::MAX;
/// Sentinel in the id-window index: this id sits in the sorted ready run.
const IN_READY: u32 = u32::MAX - 1;
/// Smallest bucket count; also the initial one.
const MIN_BUCKETS: usize = 16;
/// Largest bucket count (memory bound; beyond this, occupancy grows).
const MAX_BUCKETS: usize = 1 << 21;
/// Initial bucket width as a power-of-two shift: 2^10 = 1024 ns.
/// Re-estimated at resizes. Widths are always powers of two so the hot
/// bucket/division computations are shifts, not divisions.
const INITIAL_SHIFT: u32 = 10;
/// A refill run longer than this hints the bucket width no longer fits
/// the event-time distribution and a re-estimate is worth its O(n).
const RUN_PRESSURE: usize = 64;

struct CalEntry<E> {
    time: u64,
    seq: u64,
    event: E,
}

/// A calendar queue with a sorted bottom run: O(1) schedule and cancel,
/// amortized O(log k) dequeue (k = entries per bucket-width of time),
/// exact `(time, id)` FIFO ordering.
///
/// Entries live in a power-of-two ring of unsorted buckets, each covering
/// `2^shift` nanoseconds of virtual time (Brown's calendar queue). The
/// twist — borrowed from ladder queues — is the **ready run**: dequeue
/// extracts the entire earliest non-empty division from its bucket, sorts
/// it once by `(time, seq)` *descending*, and then serves pops off the
/// back of that vector in O(1). Same-instant event storms (fan-outs
/// scheduled for one tick) therefore cost one O(k log k) sort instead of
/// k linear bucket scans, and the FIFO tie-break falls out of the sort
/// key.
///
/// Invariant: every entry in the ready run precedes every bucket entry in
/// time (the run is a whole minimal division; later pushes that would
/// land inside the run's time range are merge-inserted into it).
pub struct CalendarQueue<E> {
    /// The earliest division, sorted by `(time, seq)` descending; pops
    /// come off the back.
    ready: Vec<CalEntry<E>>,
    /// Power-of-two ring of unsorted buckets; entry `e` lives in bucket
    /// `(e.time >> shift) & mask`.
    buckets: Vec<Vec<CalEntry<E>>>,
    mask: u64,
    /// log2 of the bucket width in nanoseconds.
    shift: u32,
    /// Live entries (ready run + buckets).
    n: usize,
    /// Live entries on the bucket side only (drives ring sizing).
    in_buckets: usize,
    /// Scan floor: no live entry is earlier than this (rewound if a
    /// standalone user pushes below it).
    cur: u64,
    next_seq: u64,
    high_water: usize,
    /// Location hint of every id in `[base_id, next_seq)`, offset by
    /// `head`: a bucket index, [`IN_READY`], or [`NOT_PENDING`]. Bucket
    /// hints may be stale for entries that moved into the ready run —
    /// cancel falls through to a run scan when the bucket misses. The
    /// prefix `[..head]` is retired; it is compacted away once it
    /// dominates the vector, so memory is bounded by the id span of
    /// *pending* events.
    live: Vec<u32>,
    /// Index into `live` of the oldest not-yet-retired id.
    head: usize,
    /// Id corresponding to `live[0]`.
    base_id: u64,
    /// Operations since the last resize — the amortization guard that
    /// lets run pressure trigger a width re-estimate at most once per
    /// O(n) operations.
    since_resize: usize,
    /// Run length that triggers a width re-estimate. Starts at
    /// [`RUN_PRESSURE`]; a re-estimate that fails to change the width
    /// (irreducible same-instant clusters) doubles it, so hopeless
    /// rebuilds stop, while a genuinely shifted distribution (even longer
    /// runs) still gets retried.
    pressure_floor: usize,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue sized for about `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        let nb = cap.next_power_of_two().clamp(MIN_BUCKETS, MAX_BUCKETS);
        CalendarQueue {
            ready: Vec::new(),
            buckets: (0..nb).map(|_| Vec::new()).collect(),
            mask: (nb - 1) as u64,
            shift: INITIAL_SHIFT,
            n: 0,
            in_buckets: 0,
            cur: 0,
            next_seq: 0,
            high_water: 0,
            live: Vec::new(),
            head: 0,
            base_id: 0,
            since_resize: 0,
            pressure_floor: RUN_PRESSURE,
        }
    }

    #[inline]
    fn bucket_of(&self, time: u64) -> u32 {
        ((time >> self.shift) & self.mask) as u32
    }

    /// Marks `seq` done in the id window and advances the window head
    /// past retired ids; compacts the retired prefix away once it
    /// dominates (amortized O(1)).
    #[inline]
    fn retire(&mut self, seq: u64) {
        let idx = (seq - self.base_id) as usize;
        if idx != self.head {
            // Out-of-order retire: mark it; the head sweeps past once the
            // older ids are done.
            self.live[idx] = NOT_PENDING;
            return;
        }
        self.head += 1;
        while self.head < self.live.len() && self.live[self.head] == NOT_PENDING {
            self.head += 1;
        }
        if self.head >= 64 && self.head * 2 >= self.live.len() {
            self.live.drain(..self.head);
            self.base_id += self.head as u64;
            self.head = 0;
        }
    }

    /// Moves the earliest non-empty division out of its bucket into the
    /// (empty) ready run and sorts it. Standard calendar scan: walk
    /// divisions upward from the scan floor; if a whole ring cycle finds
    /// nothing (sparse far-future events), fall back to a direct global
    /// scan.
    fn refill(&mut self) {
        debug_assert!(self.ready.is_empty() && self.in_buckets > 0);
        let nb = self.buckets.len() as u64;
        let shift = self.shift;
        let d0 = self.cur >> shift;
        let mut division = None;
        for i in 0..nb {
            let d = d0 + i;
            let b = (d & self.mask) as usize;
            if self.buckets[b].iter().any(|e| e.time >> shift == d) {
                division = Some(d);
                break;
            }
        }
        let d = division.unwrap_or_else(|| {
            // Empty year: global scan for the earliest entry.
            let mut min: Option<u64> = None;
            for bucket in &self.buckets {
                for e in bucket {
                    if min.is_none_or(|m| e.time < m) {
                        min = Some(e.time);
                    }
                }
            }
            min.expect("in_buckets > 0 implies a live entry") >> shift
        });
        let bucket = &mut self.buckets[(d & self.mask) as usize];
        if bucket.iter().all(|e| e.time >> shift == d) {
            // Common case: the bucket holds exactly one division. Swap it
            // in wholesale; the bucket inherits the drained run's buffer.
            std::mem::swap(bucket, &mut self.ready);
        } else {
            // Aliased case (ring shorter than the live time span): split
            // the bucket, matching entries into the run.
            for e in std::mem::take(bucket) {
                if e.time >> shift == d {
                    self.ready.push(e);
                } else {
                    bucket.push(e);
                }
            }
        }
        self.in_buckets -= self.ready.len();
        self.since_resize += self.ready.len();
        self.cur = d << shift;
        // Run pressure: a run far longer than a bucket should hold means
        // the width no longer matches the event-time distribution (e.g.
        // it was estimated while everything sat at one instant).
        // Re-estimate — at most once per O(n) operations, so the O(n)
        // rebuild amortizes to O(1) and an irreducibly clustered
        // population (one giant same-time storm) cannot thrash. The
        // extracted run is unaffected: it precedes all bucket entries in
        // time whatever the new width is.
        if self.ready.len() > self.pressure_floor && self.since_resize > self.n {
            let old_shift = self.shift;
            self.resize();
            self.pressure_floor = if self.shift == old_shift {
                self.ready.len() * 2
            } else {
                RUN_PRESSURE
            };
        }
        // Entries arrive in push (seq) order, so for the dominant
        // same-time run this is a reversal the sort detects in O(k).
        self.ready
            .sort_unstable_by_key(|e| std::cmp::Reverse((e.time, e.seq)));
    }

    /// Rebuilds the ring with a population-appropriate bucket count and a
    /// width re-estimated from the bucket entries' time spread. The ready
    /// run is untouched.
    fn resize(&mut self) {
        let target = self
            .in_buckets
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        let mut all: Vec<CalEntry<E>> = Vec::with_capacity(self.in_buckets);
        for bucket in &mut self.buckets {
            all.append(bucket);
        }
        if let Some(w) = estimate_width(&all) {
            // Round down to a power of two: narrower buckets cost cheap
            // empty-bucket probes, wider ones cost longer ready runs.
            self.shift = 63 - w.max(1).leading_zeros();
        }
        if self.buckets.len() != target {
            self.buckets = (0..target).map(|_| Vec::new()).collect();
            self.mask = (target - 1) as u64;
        }
        for e in all {
            let b = self.bucket_of(e.time);
            self.live[(e.seq - self.base_id) as usize] = b;
            self.buckets[b as usize].push(e);
        }
        self.since_resize = 0;
    }

    #[inline]
    fn maybe_grow(&mut self) {
        if self.in_buckets > 2 * self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
            self.resize();
        }
    }

    #[inline]
    fn maybe_shrink(&mut self) {
        if self.buckets.len() > MIN_BUCKETS && self.in_buckets < self.buckets.len() / 4 {
            self.resize();
        }
    }
}

/// Width rule: the sampled time span divided by the estimated number of
/// *distinct* event times. Event populations whose timestamps cluster on
/// a few instants (synchronized timers) want one cluster per bucket —
/// dividing by the raw population would shatter clusters across aliased
/// buckets. Duplicates are detected from sample collisions: a sample
/// with collisions implies few distinct values population-wide, while an
/// all-distinct sample implies a dense distinct population. `None` if
/// the sample spans no time at all — all-equal times keep the previous
/// width.
fn estimate_width<E>(entries: &[CalEntry<E>]) -> Option<u64> {
    if entries.len() < 2 {
        return None;
    }
    // Sample evenly across the population to bound the sort.
    const SAMPLE: usize = 64;
    let step = entries.len().div_ceil(SAMPLE);
    let mut times: Vec<u64> = entries.iter().step_by(step).map(|e| e.time).collect();
    times.sort_unstable();
    let span = times.last().expect("len >= 2 checked above")
        - times.first().expect("len >= 2 checked above");
    if span == 0 {
        return None;
    }
    let distinct = 1 + times.windows(2).filter(|w| w[1] > w[0]).count();
    let divisor = if distinct < times.len() {
        // Collisions in the sample: the population has few distinct
        // instants, and the sample almost surely saw them all.
        distinct as u64
    } else {
        entries.len() as u64
    };
    Some((span / divisor).max(1))
}

impl<E> PendingEvents<E> for CalendarQueue<E> {
    fn push(&mut self, time: SimTime, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.since_resize += 1;
        let t = time.as_nanos();
        if t < self.cur {
            self.cur = t;
        }
        self.n += 1;
        self.high_water = self.high_water.max(self.n);
        // An entry inside the ready run's time range merge-inserts into
        // the run (descending order) to preserve the run-precedes-buckets
        // invariant.
        if self.ready.first().is_some_and(|front| t <= front.time) {
            let pos = self.ready.partition_point(|e| (e.time, e.seq) > (t, seq));
            self.ready.insert(
                pos,
                CalEntry {
                    time: t,
                    seq,
                    event,
                },
            );
            self.live.push(IN_READY);
            return EventId(seq);
        }
        let b = self.bucket_of(t);
        self.buckets[b as usize].push(CalEntry {
            time: t,
            seq,
            event,
        });
        self.live.push(b);
        self.in_buckets += 1;
        self.maybe_grow();
        EventId(seq)
    }

    fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        if self.ready.is_empty() {
            if self.in_buckets == 0 {
                return None;
            }
            self.refill();
        }
        let e = self.ready.pop().expect("refill produced a run");
        self.n -= 1;
        self.cur = e.time;
        self.retire(e.seq);
        Some((SimTime::from_nanos(e.time), EventId(e.seq), e.event))
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        if self.ready.is_empty() {
            if self.in_buckets == 0 {
                return None;
            }
            self.refill();
        }
        Some(SimTime::from_nanos(self.ready.last().expect("run").time))
    }

    fn cancel(&mut self, id: EventId) -> bool {
        let seq = id.0;
        if seq < self.base_id || seq >= self.next_seq {
            return false;
        }
        let idx = (seq - self.base_id) as usize;
        if idx < self.head {
            // Swept past by an in-order retire (those skip the slot
            // write); nothing below the head is pending.
            return false;
        }
        let hint = self.live[idx];
        if hint == NOT_PENDING {
            return false;
        }
        if hint != IN_READY {
            // The hint may be stale in two ways for entries that moved to
            // the ready run without a rewrite: it can point at a bucket
            // that no longer holds the entry, or — after the ring shrank
            // (resize only re-hints bucket entries) — past the ring
            // entirely. Treat both as a miss and fall through to the run.
            if let Some(bucket) = self.buckets.get_mut(hint as usize) {
                if let Some(pos) = bucket.iter().position(|e| e.seq == seq) {
                    bucket.swap_remove(pos);
                    self.n -= 1;
                    self.in_buckets -= 1;
                    self.retire(seq);
                    self.maybe_shrink();
                    return true;
                }
            }
        }
        let pos = self
            .ready
            .iter()
            .position(|e| e.seq == seq)
            .expect("pending entry is in its hinted bucket or the run");
        self.ready.remove(pos);
        self.n -= 1;
        self.retire(seq);
        true
    }

    fn len(&self) -> usize {
        self.n
    }

    fn high_water_mark(&self) -> usize {
        self.high_water
    }

    fn pushed_total(&self) -> u64 {
        self.next_seq
    }

    fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.ready.clear();
        self.live.clear();
        self.head = 0;
        self.base_id = self.next_seq;
        self.n = 0;
        self.in_buckets = 0;
    }
}

// ---------------------------------------------------------------------
// EventQueue — the facade the simulator owns.
// ---------------------------------------------------------------------

/// A stable min-priority queue of timestamped events — the facade over
/// the [`QueueKind`]-selected implementation.
///
/// # Examples
///
/// ```
/// use simcore::event::EventQueue;
/// use simcore::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(2), "late");
/// q.push(SimTime::from_millis(1), "early");
/// q.push(SimTime::from_millis(1), "early-second");
///
/// assert_eq!(q.pop().map(|(t, _, e)| (t.as_millis(), e)), Some((1, "early")));
/// assert_eq!(q.pop().map(|(t, _, e)| (t.as_millis(), e)), Some((1, "early-second")));
/// assert_eq!(q.pop().map(|(t, _, e)| (t.as_millis(), e)), Some((2, "late")));
/// assert!(q.pop().is_none());
/// ```
pub enum EventQueue<E> {
    /// Calendar-queue backed (default).
    Calendar(CalendarQueue<E>),
    /// Binary-heap backed (differential oracle).
    Heap(HeapQueue<E>),
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

macro_rules! delegate {
    ($self:ident, $q:ident => $body:expr) => {
        match $self {
            EventQueue::Calendar($q) => $body,
            EventQueue::Heap($q) => $body,
        }
    };
}

impl<E> EventQueue<E> {
    /// Creates an empty calendar-backed queue.
    pub fn new() -> Self {
        Self::with_kind(QueueKind::Calendar)
    }

    /// Creates an empty queue of the given kind.
    pub fn with_kind(kind: QueueKind) -> Self {
        Self::with_capacity_and_kind(0, kind)
    }

    /// Creates an empty calendar-backed queue with space for `cap`
    /// pending events.
    pub fn with_capacity(cap: usize) -> Self {
        Self::with_capacity_and_kind(cap, QueueKind::Calendar)
    }

    /// Creates an empty queue of the given kind, sized for `cap` pending
    /// events.
    pub fn with_capacity_and_kind(cap: usize, kind: QueueKind) -> Self {
        match kind {
            QueueKind::Calendar => EventQueue::Calendar(CalendarQueue::with_capacity(cap)),
            QueueKind::BinaryHeap => EventQueue::Heap(HeapQueue::with_capacity(cap)),
        }
    }

    /// Which implementation backs this queue.
    pub fn kind(&self) -> QueueKind {
        match self {
            EventQueue::Calendar(_) => QueueKind::Calendar,
            EventQueue::Heap(_) => QueueKind::BinaryHeap,
        }
    }

    /// Schedules `event` at absolute time `time` and returns its id.
    ///
    /// Events with equal timestamps are delivered in push order.
    #[inline]
    pub fn push(&mut self, time: SimTime, event: E) -> EventId {
        delegate!(self, q => q.push(time, event))
    }

    /// Removes and returns the earliest event as `(time, id, event)`.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        delegate!(self, q => q.pop())
    }

    /// The timestamp of the earliest pending event, if any.
    #[inline]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        delegate!(self, q => q.peek_time())
    }

    /// Cancels a pending event in O(1); returns `false` (a no-op) if it
    /// already fired, was already cancelled, or was cleared away.
    #[inline]
    pub fn cancel(&mut self, id: EventId) -> bool {
        delegate!(self, q => q.cancel(id))
    }

    /// Number of pending events (cancelled events are gone immediately,
    /// so this is exact).
    pub fn len(&self) -> usize {
        delegate!(self, q => q.len())
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Largest number of simultaneously pending events observed so far.
    /// Useful for sizing and for detecting event-storm bugs.
    pub fn high_water_mark(&self) -> usize {
        delegate!(self, q => q.high_water_mark())
    }

    /// Total number of events ever pushed.
    pub fn pushed_total(&self) -> u64 {
        delegate!(self, q => q.pushed_total())
    }

    /// Discards all pending events (the sequence counter keeps advancing
    /// so ids remain unique within the run). Cancellation state of the
    /// discarded events is discarded with them — nothing is stranded.
    pub fn clear(&mut self) {
        delegate!(self, q => q.clear())
    }
}

impl<E> PendingEvents<E> for EventQueue<E> {
    fn push(&mut self, time: SimTime, event: E) -> EventId {
        EventQueue::push(self, time, event)
    }
    fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        EventQueue::pop(self)
    }
    fn peek_time(&mut self) -> Option<SimTime> {
        EventQueue::peek_time(self)
    }
    fn cancel(&mut self, id: EventId) -> bool {
        EventQueue::cancel(self, id)
    }
    fn len(&self) -> usize {
        EventQueue::len(self)
    }
    fn high_water_mark(&self) -> usize {
        EventQueue::high_water_mark(self)
    }
    fn pushed_total(&self) -> u64 {
        EventQueue::pushed_total(self)
    }
    fn clear(&mut self) {
        EventQueue::clear(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    /// Every test runs against both implementations through the facade.
    fn both(check: impl Fn(EventQueue<i64>)) {
        check(EventQueue::with_kind(QueueKind::Calendar));
        check(EventQueue::with_kind(QueueKind::BinaryHeap));
    }

    #[test]
    fn pops_in_time_order() {
        both(|mut q| {
            q.push(ms(30), 3);
            q.push(ms(10), 1);
            q.push(ms(20), 2);
            let order: Vec<i64> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
            assert_eq!(order, vec![1, 2, 3]);
        });
    }

    #[test]
    fn equal_times_are_fifo() {
        both(|mut q| {
            for i in 0..100 {
                q.push(ms(5), i);
            }
            let order: Vec<i64> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn interleaved_equal_and_unequal() {
        both(|mut q| {
            q.push(ms(1), 10); // t1-first
            q.push(ms(0), 0); // t0
            q.push(ms(1), 11); // t1-second
            assert_eq!(q.pop().unwrap().2, 0);
            assert_eq!(q.pop().unwrap().2, 10);
            assert_eq!(q.pop().unwrap().2, 11);
        });
    }

    #[test]
    fn ids_are_unique_and_monotone() {
        both(|mut q| {
            let a = q.push(ms(1), 0);
            let b = q.push(ms(0), 0);
            assert!(b.as_u64() > a.as_u64());
        });
    }

    #[test]
    fn peek_does_not_remove() {
        both(|mut q| {
            q.push(ms(7), 0);
            assert_eq!(q.peek_time(), Some(ms(7)));
            assert_eq!(q.len(), 1);
            q.pop();
            assert_eq!(q.peek_time(), None);
        });
    }

    #[test]
    fn len_and_empty() {
        both(|mut q| {
            assert!(q.is_empty());
            q.push(ms(1), 0);
            q.push(ms(2), 0);
            assert_eq!(q.len(), 2);
            q.pop();
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
        });
    }

    #[test]
    fn high_water_mark_tracks_peak() {
        both(|mut q| {
            for i in 0..5 {
                q.push(ms(i), 0);
            }
            for _ in 0..5 {
                q.pop();
            }
            q.push(ms(9), 0);
            assert_eq!(q.high_water_mark(), 5);
            assert_eq!(q.pushed_total(), 6);
        });
    }

    #[test]
    fn clear_keeps_id_counter() {
        both(|mut q| {
            q.push(ms(1), 0);
            q.clear();
            assert!(q.is_empty());
            let id = q.push(ms(1), 0);
            assert_eq!(id.as_u64(), 1);
        });
    }

    #[test]
    fn cancel_removes_event_immediately() {
        both(|mut q| {
            let _a = q.push(ms(1), 1);
            let b = q.push(ms(2), 2);
            q.push(ms(3), 3);
            assert!(q.cancel(b));
            assert_eq!(q.len(), 2, "cancelled events leave the queue at once");
            let order: Vec<i64> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
            assert_eq!(order, vec![1, 3]);
        });
    }

    #[test]
    fn cancel_of_fired_event_is_a_noop() {
        both(|mut q| {
            let id = q.push(ms(1), 1);
            q.pop();
            assert!(!q.cancel(id), "cancelling a fired event reports false");
            assert!(!q.cancel(id), "and stays a no-op on repeat");
            q.push(ms(2), 2);
            assert_eq!(q.pop().unwrap().2, 2);
        });
    }

    #[test]
    fn cancel_twice_reports_false() {
        both(|mut q| {
            let id = q.push(ms(1), 1);
            assert!(q.cancel(id));
            assert!(!q.cancel(id));
            assert!(q.is_empty());
        });
    }

    #[test]
    fn cancel_after_clear_is_a_noop() {
        // Regression: the old Simulator-side tombstone set stranded
        // entries for events discarded by clear(); now clear() drops all
        // cancellation state with the events.
        both(|mut q| {
            let id = q.push(ms(5), 1);
            q.clear();
            assert!(!q.cancel(id), "cleared events cannot be cancelled");
            q.push(ms(1), 2);
            assert_eq!(q.pop().unwrap().2, 2);
            assert!(q.pop().is_none());
        });
    }

    #[test]
    fn cancel_of_min_refreshes_peek() {
        both(|mut q| {
            let a = q.push(ms(1), 1);
            q.push(ms(2), 2);
            assert_eq!(q.peek_time(), Some(ms(1)));
            assert!(q.cancel(a));
            assert_eq!(q.peek_time(), Some(ms(2)));
            assert_eq!(q.pop().unwrap().2, 2);
        });
    }

    #[test]
    fn large_randomish_workload_sorted() {
        // Pseudo-random but deterministic insertion order.
        both(|mut q| {
            let mut x: u64 = 0x9E3779B97F4A7C15;
            for _ in 0..1000 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                q.push(SimTime::from_nanos(x % 10_000), x as i64);
            }
            let mut last = SimTime::ZERO;
            let mut count = 0;
            while let Some((t, _, _)) = q.pop() {
                assert!(t >= last);
                last = t;
                count += 1;
            }
            assert_eq!(count, 1000);
        });
    }

    #[test]
    fn calendar_resizes_through_growth_and_shrink() {
        let mut q: CalendarQueue<u64> = CalendarQueue::new();
        // Push far past the initial bucket count to force growth…
        for i in 0..10_000u64 {
            q.push(SimTime::from_nanos(i * 37), i);
        }
        // …then drain to force shrink, asserting exact order throughout.
        for i in 0..10_000u64 {
            let (_, _, e) = q.pop().expect("entry remains");
            assert_eq!(e, i, "37ns-spaced pushes pop in push order");
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn calendar_id_window_stays_bounded() {
        // Pending ids span a window; once they retire the window head
        // advances and memory is reclaimed.
        let mut q: CalendarQueue<u64> = CalendarQueue::new();
        for round in 0..100u64 {
            for i in 0..100 {
                q.push(SimTime::from_nanos(round * 1000 + i), i);
            }
            for _ in 0..100 {
                q.pop();
            }
            assert!(
                q.live.len() - q.head <= 100,
                "pending id window must not grow across rounds"
            );
            assert!(
                q.live.len() <= 400,
                "retired prefix must compact away (len {})",
                q.live.len()
            );
        }
    }

    #[test]
    fn calendar_handles_push_below_scan_floor() {
        // Standalone (non-simulator) users may push below the last popped
        // time; the scan floor rewinds instead of losing the entry.
        let mut q: CalendarQueue<u64> = CalendarQueue::new();
        q.push(SimTime::from_millis(10), 1);
        q.pop();
        q.push(SimTime::from_millis(5), 2);
        assert_eq!(q.pop().map(|(t, _, e)| (t.as_millis(), e)), Some((5, 2)));
    }

    #[test]
    fn cancel_of_ready_entry_survives_ring_shrink() {
        // Regression: entries moved into the ready run keep stale bucket
        // hints; after cancels shrink the ring, a stale hint can point
        // past it. Cancel must fall through to the run, not panic.
        let mut q: CalendarQueue<u64> = CalendarQueue::new();
        let mut clump = Vec::new();
        for i in 0..8u64 {
            clump.push(q.push(SimTime::ZERO, i));
        }
        let mut spread = Vec::new();
        for i in 0..10_000u64 {
            spread.push(q.push(SimTime::from_nanos((i + 1) * 1_000), 100 + i));
        }
        // Move the t=0 clump into the ready run (hints go stale).
        assert_eq!(q.peek_time(), Some(SimTime::ZERO));
        // Cancel the spread so the ring shrinks far below the clump's
        // stale bucket indexes.
        for id in spread {
            assert!(q.cancel(id));
        }
        for id in clump {
            assert!(q.cancel(id), "ready-run entries remain cancellable");
        }
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn facade_kind_is_observable() {
        let q: EventQueue<u32> = EventQueue::new();
        assert_eq!(q.kind(), QueueKind::Calendar);
        let q: EventQueue<u32> = EventQueue::with_kind(QueueKind::BinaryHeap);
        assert_eq!(q.kind(), QueueKind::BinaryHeap);
    }
}
