//! The lint rules: what each one matches in the token stream and why
//! the matched pattern threatens a standing invariant (DESIGN.md §14).
//!
//! Detection is purely token-level — no type information. Where a rule
//! would need types (is this `+=` an `f64`?), it uses same-file
//! evidence (`ident : f64` declarations), which works because merge
//! functions conventionally live next to the struct they merge. The
//! limits of each heuristic are documented on the rule.

use crate::lexer::{Token, TokenKind};

/// Identity of a lint rule. `malformed-annotation` and `unused-allow`
/// are reported by the engine itself and are not in this enum: they
/// cannot be suppressed.
///
/// The first seven are token-level (PR 9); the last four are semantic
/// rules over the item graph (`crate::items` + `crate::graph`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    NondetIteration,
    WallClock,
    StrayThreads,
    FloatAccumulationInMerge,
    RngDiscipline,
    NoPrintlnInLib,
    NoBareUnwrapInLib,
    TransitiveWallClock,
    TransitiveThreads,
    RngStreamCollision,
    ExhaustiveDestructure,
}

/// All rules, in reporting order.
pub const ALL_RULES: &[Rule] = &[
    Rule::NondetIteration,
    Rule::WallClock,
    Rule::StrayThreads,
    Rule::FloatAccumulationInMerge,
    Rule::RngDiscipline,
    Rule::NoPrintlnInLib,
    Rule::NoBareUnwrapInLib,
    Rule::TransitiveWallClock,
    Rule::TransitiveThreads,
    Rule::RngStreamCollision,
    Rule::ExhaustiveDestructure,
];

impl Rule {
    /// The kebab-case name used in reports and `allow(...)` annotations.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NondetIteration => "nondeterministic-iteration",
            Rule::WallClock => "wall-clock",
            Rule::StrayThreads => "stray-threads",
            Rule::FloatAccumulationInMerge => "float-accumulation-in-merge",
            Rule::RngDiscipline => "rng-discipline",
            Rule::NoPrintlnInLib => "no-println-in-lib",
            Rule::NoBareUnwrapInLib => "no-bare-unwrap-in-lib",
            Rule::TransitiveWallClock => "transitive-wall-clock",
            Rule::TransitiveThreads => "transitive-threads",
            Rule::RngStreamCollision => "rng-stream-collision",
            Rule::ExhaustiveDestructure => "exhaustive-destructure",
        }
    }

    /// Parses an annotation rule name.
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }

    /// One-line rationale attached to every finding.
    pub fn message(self) -> &'static str {
        match self {
            Rule::NondetIteration => {
                "HashMap/HashSet in a fingerprint-visible crate: iteration order is \
                 unseeded and may change across std releases; use BTreeMap/BTreeSet or a \
                 sorted Vec, or annotate why ordering never escapes"
            }
            Rule::WallClock => {
                "wall-clock read outside cs-bench: results must be a function of the \
                 seed, never of the host clock"
            }
            Rule::StrayThreads => {
                "thread spawned outside simcore::exec: all parallelism goes through the \
                 Executor seam so scheduling can never leak into results"
            }
            Rule::FloatAccumulationInMerge => {
                "f64 accumulation inside a merge fn: float addition is not associative, \
                 so shard merge order leaks into aggregates (the PR 8 sum bug); use \
                 integer/fixed-point accumulators"
            }
            Rule::RngDiscipline => {
                "RNG stream minted outside a scenario builder: every stream must be \
                 derivation-rooted at the master seed via labeled derive()"
            }
            Rule::NoPrintlnInLib => {
                "stdout/debug write in library code: report through simstats \
                 (registry/sketch) so telemetry stays mergeable and machine-readable"
            }
            Rule::NoBareUnwrapInLib => {
                "bare unwrap() in library code: use expect(\"<invariant>\") naming the \
                 invariant that makes this infallible"
            }
            Rule::TransitiveWallClock => {
                "function reaches a wall-clock read (Instant::now/SystemTime) through \
                 workspace calls: results must be a function of the seed even when the \
                 clock hides behind a helper; route timing through cs-bench"
            }
            Rule::TransitiveThreads => {
                "function reaches thread creation through workspace calls: all \
                 parallelism goes through the simcore::exec Executor seam, including \
                 indirectly via helpers"
            }
            Rule::RngStreamCollision => {
                "duplicate derive label under one parent stream: identical \
                 (parent, label) pairs alias the same RNG stream, so two call sites \
                 silently consume one byte sequence; make every label unique per parent"
            }
            Rule::ExhaustiveDestructure => {
                "merge/export/fingerprint fn must bind every field of its struct via an \
                 exhaustive destructure or literal with no `..` rest pattern, so adding \
                 a field is a compile error instead of a silent aggregation gap"
            }
        }
    }
}

/// A rule match before policy scoping and `allow` filtering.
///
/// `detail` carries per-site evidence (e.g. the call chain that reaches
/// a clock, or the line of the first duplicate label) and is appended
/// to the rule's invariant message in the report.
#[derive(Clone, Debug)]
pub struct RawFinding {
    pub rule: Rule,
    pub line: u32,
    pub col: u32,
    pub detail: Option<String>,
}

fn hit(out: &mut Vec<RawFinding>, rule: Rule, t: &Token) {
    out.push(RawFinding {
        rule,
        line: t.line,
        col: t.col,
        detail: None,
    });
}

/// Runs every rule's matcher over the comment-free token stream.
/// Scoping and suppression happen later in the engine.
pub fn detect(src: &str, code: &[Token]) -> Vec<RawFinding> {
    let text = |i: usize| code[i].text(src);
    let is = |i: usize, s: &str| i < code.len() && text(i) == s;
    let is_ident =
        |i: usize, s: &str| i < code.len() && code[i].kind == TokenKind::Ident && text(i) == s;

    // Same-file `name : f64` declarations (struct fields, lets, params):
    // the type evidence behind float-accumulation-in-merge.
    let mut f64_names: Vec<&str> = Vec::new();
    for (i, tok) in code.iter().enumerate().take(code.len().saturating_sub(2)) {
        if tok.kind == TokenKind::Ident && is(i + 1, ":") && is_ident(i + 2, "f64") {
            f64_names.push(text(i));
        }
    }

    // Body ranges (token index spans) of `fn merge*` functions. The body
    // is the first `{ ... }` after the name — signatures cannot contain
    // a bare `{` before the body in this codebase (no const-generic
    // braces in fn signatures).
    let mut merge_bodies: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i + 1 < code.len() {
        if is_ident(i, "fn") && text(i + 1).starts_with("merge") {
            let mut j = i + 2;
            while j < code.len() && !is(j, "{") && !is(j, ";") {
                j += 1;
            }
            if j < code.len() && is(j, "{") {
                let mut depth = 0usize;
                let open = j;
                while j < code.len() {
                    if is(j, "{") {
                        depth += 1;
                    } else if is(j, "}") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                merge_bodies.push((open, j.min(code.len())));
                i = open;
            }
        }
        i += 1;
    }
    let in_merge = |i: usize| merge_bodies.iter().any(|&(a, b)| i > a && i < b);

    let mut out = Vec::new();
    for i in 0..code.len() {
        let t = &code[i];
        if t.kind != TokenKind::Ident && !(t.kind == TokenKind::Punct && text(i) == "+=") {
            continue;
        }
        let w = text(i);
        match w {
            // nondeterministic-iteration: any appearance — import, type
            // position, or constructor — of the unordered std maps.
            "HashMap" | "HashSet" => hit(&mut out, Rule::NondetIteration, t),

            // wall-clock: `Instant::now` call sites and any mention of
            // `SystemTime` (even importing it has no legitimate use
            // outside the bench harness).
            "Instant" if is(i + 1, "::") && is_ident(i + 2, "now") => {
                hit(&mut out, Rule::WallClock, t)
            }
            "SystemTime" => hit(&mut out, Rule::WallClock, t),

            // stray-threads: `thread::spawn` / `thread::scope` paths
            // (also matches the `std::thread::` spelling since `thread`
            // precedes the call either way).
            "thread"
                if is(i + 1, "::") && (is_ident(i + 2, "spawn") || is_ident(i + 2, "scope")) =>
            {
                hit(&mut out, Rule::StrayThreads, t)
            }

            // rng-discipline: minting (`SimRng::seed_from` /
            // `SimRng::new`) or deriving (`.derive(` /
            // `.derive_indexed(`) a stream. The leading dot keeps
            // `#[derive(...)]` attributes out.
            "SimRng"
                if is(i + 1, "::") && (is_ident(i + 2, "seed_from") || is_ident(i + 2, "new")) =>
            {
                hit(&mut out, Rule::RngDiscipline, t)
            }
            "derive" | "derive_indexed" if i > 0 && is(i - 1, ".") && is(i + 1, "(") => {
                hit(&mut out, Rule::RngDiscipline, t)
            }

            // no-println-in-lib: stdout/stderr/debug macros.
            "println" | "print" | "eprintln" | "eprint" | "dbg" if is(i + 1, "!") => {
                hit(&mut out, Rule::NoPrintlnInLib, t)
            }

            // no-bare-unwrap-in-lib: `.unwrap()` exactly — `unwrap_or*`
            // are different idents and stay legal.
            "unwrap" if i > 0 && is(i - 1, ".") && is(i + 1, "(") && is(i + 2, ")") => {
                hit(&mut out, Rule::NoBareUnwrapInLib, t)
            }

            // float-accumulation-in-merge, part 1: `x += …` / `self.x += …`
            // where `x` is declared `: f64` in this file.
            "+=" if in_merge(i) && i > 0 => {
                let lhs = text(i - 1);
                if code[i - 1].kind == TokenKind::Ident && f64_names.contains(&lhs) {
                    hit(&mut out, Rule::FloatAccumulationInMerge, t);
                }
            }

            // part 2: any `.sum(` / `.sum::<…>(` reduction inside a
            // merge body — summing an iterator of floats is the same
            // order-sensitivity with extra steps, and integer `.sum()`
            // has no business in a merge either (use explicit `+`).
            "sum"
                if in_merge(i)
                    && i > 0
                    && is(i - 1, ".")
                    && (is(i + 1, "(") || is(i + 1, "::")) =>
            {
                hit(&mut out, Rule::FloatAccumulationInMerge, t)
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<(Rule, u32)> {
        let toks = lex(src);
        let code: Vec<_> = toks
            .into_iter()
            .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .collect();
        detect(src, &code)
            .into_iter()
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn derive_attribute_is_not_a_stream_derive() {
        assert!(run("#[derive(Clone, Debug)]\nstruct S;").is_empty());
        assert_eq!(
            run("let c = rng.derive(\"x\");"),
            vec![(Rule::RngDiscipline, 1)]
        );
        assert_eq!(
            run("rng.derive_indexed(\"s\", 3);"),
            vec![(Rule::RngDiscipline, 1)]
        );
    }

    #[test]
    fn unwrap_variants() {
        assert_eq!(run("x.unwrap();"), vec![(Rule::NoBareUnwrapInLib, 1)]);
        assert!(run("x.unwrap_or(0);").is_empty());
        assert!(run("x.unwrap_or_else(|| 0);").is_empty());
        assert!(run("x.expect(\"invariant\");").is_empty());
    }

    #[test]
    fn float_merge_needs_f64_evidence() {
        let bad =
            "struct S { sum: f64 }\nimpl S { fn merge(&mut self, o: &S) { self.sum += o.sum; } }";
        assert_eq!(run(bad), vec![(Rule::FloatAccumulationInMerge, 2)]);
        let good = "struct S { n: u64 }\nimpl S { fn merge(&mut self, o: &S) { self.n += o.n; } }";
        assert!(run(good).is_empty());
        let outside =
            "struct S { sum: f64 }\nimpl S { fn add(&mut self, v: f64) { self.sum += v; } }";
        assert!(run(outside).is_empty());
        let iter_sum = "fn merge_all(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }";
        assert_eq!(run(iter_sum), vec![(Rule::FloatAccumulationInMerge, 1)]);
    }

    #[test]
    fn wall_clock_and_threads() {
        assert_eq!(run("let t = Instant::now();"), vec![(Rule::WallClock, 1)]);
        assert_eq!(
            run("use std::time::SystemTime;"),
            vec![(Rule::WallClock, 1)]
        );
        // `Instant` alone (a type in a signature) is not a read.
        assert!(run("fn f(t: Instant) {}").is_empty());
        assert_eq!(
            run("std::thread::spawn(|| {});"),
            vec![(Rule::StrayThreads, 1)]
        );
        assert_eq!(run("thread::scope(|s| {});"), vec![(Rule::StrayThreads, 1)]);
        assert!(run("pool.spawn(job);").is_empty());
    }
}
