//! The congestion-control interface and simple policies.
//!
//! Every per-hop sender owns one [`CongestionControl`] object. The
//! surrounding [`crate::hop::HopTransport`] does the bookkeeping
//! (sequence numbers, send timestamps, base-RTT tracking) and calls into
//! the controller with pre-digested values, so controllers are pure,
//! easily-tested state machines.

use simcore::time::{SimDuration, SimTime};

/// Which phase a delay-based controller is in; exposed for traces, tests,
/// and the experiment harness.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Ramp-up (slow start): discrete rounds of doubling trains.
    SlowStart,
    /// Vegas-style congestion avoidance.
    CongestionAvoidance,
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Phase::SlowStart => write!(f, "slow-start"),
            Phase::CongestionAvoidance => write!(f, "congestion-avoidance"),
        }
    }
}

/// A per-hop congestion controller.
///
/// Contract (enforced by `HopTransport` and its tests):
///
/// * `allow_send` is consulted before every send; `on_sent` is called for
///   every cell actually sent, with the per-hop sequence number.
/// * `on_feedback` is called once per matching feedback message, with the
///   RTT sample for that cell and the current `baseRtt` (which already
///   includes this sample).
/// * `cwnd()` must stay within the controller's configured bounds at all
///   times.
pub trait CongestionControl {
    /// Human-readable algorithm name (for reports).
    fn name(&self) -> &'static str;

    /// Current congestion window, in cells.
    fn cwnd(&self) -> u32;

    /// Current phase.
    fn phase(&self) -> Phase;

    /// Whether a new cell may be sent right now, given the number of cells
    /// outstanding (sent but not yet fed back).
    fn allow_send(&self, outstanding: u32) -> bool;

    /// A cell with per-hop sequence number `seq` was sent at `now`.
    fn on_sent(&mut self, seq: u64, now: SimTime);

    /// Feedback for cell `seq` arrived at `now`, with its RTT sample and
    /// the hop's running minimum RTT.
    fn on_feedback(&mut self, seq: u64, rtt: SimDuration, base_rtt: SimDuration, now: SimTime);
}

/// Policy invoked when a delay-based ramp-up ends: decides the window to
/// enter congestion avoidance with.
///
/// The paper's contribution — *overshoot compensation* — is exactly one
/// implementation of this trait (in the `circuitstart` crate); the
/// traditional behaviour is [`HalvingExit`].
pub trait RampExit {
    /// Name for reports.
    fn name(&self) -> &'static str;

    /// The window to use after leaving the ramp.
    ///
    /// * `cwnd_at_exit` — the (possibly overshot) window when the delay
    ///   signal fired.
    /// * `acked_in_round` — cells of the current round already fed back
    ///   ("acknowledged within the current round so far").
    fn exit_cwnd(&self, cwnd_at_exit: u32, acked_in_round: u32) -> u32;
}

/// Traditional exit: halve the window (the paper's "without CircuitStart"
/// behaviour for leaving slow start).
#[derive(Clone, Copy, Debug, Default)]
pub struct HalvingExit;

impl RampExit for HalvingExit {
    fn name(&self) -> &'static str {
        "halving"
    }

    fn exit_cwnd(&self, cwnd_at_exit: u32, _acked_in_round: u32) -> u32 {
        cwnd_at_exit / 2
    }
}

/// A constant window — models Tor's fixed windowing when used at the
/// source, and serves as an ablation controller.
#[derive(Clone, Copy, Debug)]
pub struct FixedWindowCc {
    cwnd: u32,
}

impl FixedWindowCc {
    /// Creates a fixed window of `cwnd` cells.
    ///
    /// # Panics
    ///
    /// Panics if `cwnd` is zero.
    pub fn new(cwnd: u32) -> Self {
        assert!(cwnd > 0, "fixed window must be positive");
        FixedWindowCc { cwnd }
    }
}

impl CongestionControl for FixedWindowCc {
    fn name(&self) -> &'static str {
        "fixed-window"
    }
    fn cwnd(&self) -> u32 {
        self.cwnd
    }
    fn phase(&self) -> Phase {
        Phase::CongestionAvoidance
    }
    fn allow_send(&self, outstanding: u32) -> bool {
        outstanding < self.cwnd
    }
    fn on_sent(&mut self, _seq: u64, _now: SimTime) {}
    fn on_feedback(&mut self, _seq: u64, _rtt: SimDuration, _base: SimDuration, _now: SimTime) {}
}

/// No window at all: every send is allowed. Used for relays operating in
/// end-to-end (vanilla Tor) mode, where only the endpoints limit traffic.
#[derive(Clone, Copy, Debug, Default)]
pub struct UnlimitedCc;

impl CongestionControl for UnlimitedCc {
    fn name(&self) -> &'static str {
        "unlimited"
    }
    fn cwnd(&self) -> u32 {
        u32::MAX
    }
    fn phase(&self) -> Phase {
        Phase::CongestionAvoidance
    }
    fn allow_send(&self, _outstanding: u32) -> bool {
        true
    }
    fn on_sent(&mut self, _seq: u64, _now: SimTime) {}
    fn on_feedback(&mut self, _seq: u64, _rtt: SimDuration, _base: SimDuration, _now: SimTime) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_display() {
        assert_eq!(Phase::SlowStart.to_string(), "slow-start");
        assert_eq!(
            Phase::CongestionAvoidance.to_string(),
            "congestion-avoidance"
        );
    }

    #[test]
    fn halving_exit_halves() {
        let e = HalvingExit;
        assert_eq!(e.exit_cwnd(64, 10), 32);
        assert_eq!(e.exit_cwnd(3, 10), 1);
        assert_eq!(e.name(), "halving");
    }

    #[test]
    fn fixed_window_gates_on_outstanding() {
        let cc = FixedWindowCc::new(3);
        assert!(cc.allow_send(0));
        assert!(cc.allow_send(2));
        assert!(!cc.allow_send(3));
        assert_eq!(cc.cwnd(), 3);
        assert_eq!(cc.name(), "fixed-window");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_fixed_window_rejected() {
        let _ = FixedWindowCc::new(0);
    }

    #[test]
    fn unlimited_always_allows() {
        let cc = UnlimitedCc;
        assert!(cc.allow_send(0));
        assert!(cc.allow_send(u32::MAX - 1));
        assert_eq!(cc.cwnd(), u32::MAX);
    }
}
