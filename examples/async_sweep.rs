//! The async-runtime experiment sweep: every selection policy evaluated
//! over a sharded star experiment on the work-stealing thread pool,
//! with the deterministic single-threaded runtime verified as the
//! oracle *inside the same run*.
//!
//! This is what the `Runtime` seam exists for (DESIGN.md §10): policy
//! evaluation needs many independent worlds — seeds × policies — and
//! their wall-clock cost, not any single world's, bounds experiment
//! scale. Each shard here is a complete churning star world derived
//! from `(seed, shard)`; the pool runs them across cores; the merged
//! per-policy flow CDF and relay-hotspot telemetry come out identical
//! to a sequential run, and the example proves it by re-running one
//! policy on the deterministic executor and comparing fingerprints.
//!
//! ```text
//! cargo run --release --example async_sweep            # 4 shards, 4 workers
//! cargo run --release --example async_sweep -- 8 2     # 8 shards, 2 workers
//! ```

use std::sync::Arc;

use backtap::config::CcConfig;
use circuitstart::Algorithm;
use relaynet::runtime::{FactoryMaker, ShardedStar, StatsKind};
use relaynet::selection::all_policies;
use relaynet::workload::{ArrivalSpec, ChurnSpec, WorkloadSpec};
use relaynet::{DirectoryConfig, StarScenario};
use simcore::event::QueueKind;
use simcore::exec::{DeterministicExecutor, Executor, ThreadedExecutor};

fn experiment(policy: relaynet::SelectionPolicy, shards: usize) -> ShardedStar {
    ShardedStar {
        scenario: StarScenario {
            circuits: 3,
            file_bytes: 60_000,
            directory: DirectoryConfig {
                relays: 10,
                bandwidth_mbps: (15.0, 80.0),
                delay_ms: (2.0, 10.0),
            },
            workload: WorkloadSpec {
                streams_per_circuit: 3,
                arrival: ArrivalSpec::OnOff {
                    burst: 2,
                    gap_ms: (10.0, 50.0),
                },
                churn: Some(ChurnSpec {
                    teardown_after_ms: (40.0, 120.0),
                    rebuild_delay_ms: 5.0,
                    cycles: 1,
                }),
            },
            selection: policy,
            ..Default::default()
        },
        shards,
        seed: 4242,
        queue: QueueKind::default(),
        stats: StatsKind::default(),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let shards: usize = args
        .next()
        .map(|a| a.parse().expect("shard count"))
        .unwrap_or(4);
    let workers: usize = args
        .next()
        .map(|a| a.parse().expect("worker count"))
        .unwrap_or(4);
    let maker: FactoryMaker = Arc::new(|| Algorithm::CircuitStart.factory(CcConfig::default()));
    let pool = ThreadedExecutor::new(workers);

    println!(
        "async policy sweep: {shards} shards x {} circuits, {} workers ({})\n",
        3,
        pool.workers(),
        pool.name()
    );
    println!(
        "{:<12} {:>9} {:>11} {:>9} {:>9} {:>10}",
        "policy", "flows", "cells", "p50 s", "p90 s", "peak load"
    );
    for policy in all_policies() {
        let exp = experiment(policy.clone(), shards);
        let sweep = exp.run(&pool, maker.clone());
        let cdf = sweep.completion_cdf().expect("completed flows");
        let peak_load = sweep
            .shards
            .iter()
            .flat_map(|s| s.fingerprint.relay_load_hwms.iter().copied())
            .max()
            .unwrap_or(0);
        println!(
            "{:<12} {:>9} {:>11} {:>9.3} {:>9.3} {:>10}",
            policy.name(),
            sweep
                .shards
                .iter()
                .map(|s| s.fingerprint.flows.len())
                .sum::<usize>(),
            sweep.cells_delivered,
            cdf.quantile(0.5),
            cdf.quantile(0.9),
            peak_load,
        );
    }

    // The oracle check: one policy re-run on the deterministic
    // single-threaded executor must reproduce the pool's outcome bit
    // for bit.
    let exp = experiment(all_policies()[3].clone(), shards);
    let threaded = exp.run(&pool, maker.clone());
    let oracle = exp.run(&DeterministicExecutor, maker);
    assert_eq!(
        oracle.shards, threaded.shards,
        "threaded sweep diverged from the deterministic oracle"
    );
    println!(
        "\noracle check: {} shards bit-identical across {} and {} executors",
        shards,
        DeterministicExecutor.name(),
        pool.name()
    );
}
