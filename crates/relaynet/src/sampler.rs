//! Incremental weighted sampling: the draw engine behind path selection.
//!
//! Every weighted [`crate::selection::PathSelection`] policy reduces to
//! the same primitive — draw `path_len` distinct relay indices with
//! probability proportional to per-relay weights — and at consensus
//! scale (~7k relays) that primitive is the hot path, not a setup step.
//! This module provides it behind a seam, mirroring the
//! `QueueKind`/`PendingEvents` pattern in `simcore`:
//!
//! * [`LinearSampler`] — the historical O(n)-per-draw scan, kept as the
//!   differential oracle and as the default for small directories where
//!   the scan's cache behaviour beats tree bookkeeping.
//! * [`FenwickSampler`] — a Fenwick (binary indexed) tree over the
//!   weights: O(log n) draw and O(log n) point update, fed incrementally
//!   by the load ledger instead of rebuilt per selection.
//! * [`SamplerKind`] — the scenario-level switch, with an `Auto` mode
//!   that crosses over at [`FENWICK_CROSSOVER`] relays.
//!
//! # The integer-weight exactness contract
//!
//! Both samplers accept only **integer-valued** `f64` weights whose
//! total stays below 2⁵³ ([`MAX_EXACT_TOTAL`]). Under that contract
//! every partial sum, running-total decrement, and tree-node sum is
//! exact (each intermediate value is an integer below 2⁵³, hence
//! representable), which buys two load-bearing properties:
//!
//! 1. **Pick equivalence.** A draw takes `x = rng.range_f64(0, total)`
//!    and returns the largest index `p` with `prefix(p) <= x`. The
//!    linear scan computes the prefix sums by running subtraction; the
//!    Fenwick descent computes them from tree nodes. With exact integer
//!    arithmetic both see the *same* prefix sums and the *same* total —
//!    so they consume identical randomness and return bit-identical
//!    picks, at any directory size. The pinned selection constants in
//!    `tests/path_selection.rs` therefore hold under either sampler,
//!    and the `Auto` crossover is purely a performance decision.
//! 2. **Drift-free increments.** A point update (`set`) adjusts the
//!    total and tree nodes by the exact integer delta, so a sampler
//!    maintained incrementally across thousands of load changes is
//!    bit-identical to one rebuilt from scratch — asserted by the
//!    differential suite.
//!
//! Policies enforce the contract by quantizing their weights with
//! `round()` (bandwidths are already integer bit/s).

use simcore::rng::SimRng;

/// Largest weight total for which every intermediate sum is exactly
/// representable as `f64` (2⁵³). A 7k-relay directory of 1e12-max
/// latency weights totals 7e15 < 9.007e15, so the contract holds with
/// headroom; exceeding it is a policy bug and panics.
pub const MAX_EXACT_TOTAL: f64 = 9_007_199_254_740_992.0; // 2^53

/// Directory size at which [`SamplerKind::Auto`] switches from the
/// linear scan to the Fenwick tree. Below this the O(n) scan's simple
/// sequential pass is at least as fast as O(log n) tree hops, and the
/// legacy code path stays exercised by every small scenario.
pub const FENWICK_CROSSOVER: usize = 64;

/// Which weighted-sampler implementation placement uses — the sampler
/// seam's scenario-level switch (compare `simcore::event::QueueKind`).
/// Pick equivalence (module docs) makes the choice unobservable in
/// experiment outcomes; it only changes selection cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SamplerKind {
    /// Linear below [`FENWICK_CROSSOVER`] relays, Fenwick at or above.
    #[default]
    Auto,
    /// Always the O(n) linear scan (the differential oracle).
    Linear,
    /// Always the O(log n) Fenwick tree.
    Fenwick,
}

impl SamplerKind {
    /// Resolves `Auto` against a directory size.
    pub fn resolve(self, relays: usize) -> SamplerKind {
        match self {
            SamplerKind::Auto => {
                if relays >= FENWICK_CROSSOVER {
                    SamplerKind::Fenwick
                } else {
                    SamplerKind::Linear
                }
            }
            other => other,
        }
    }
}

fn validate_weight(w: f64) {
    assert!(
        w >= 0.0 && w.is_finite(),
        "selection weights must be finite and non-negative"
    );
    assert!(
        w == w.trunc() && w <= MAX_EXACT_TOTAL,
        "sampler weights must be integer-valued below 2^53 (quantize the policy weight), got {w}"
    );
}

/// The weighted-draw engine as the selection layer consumes it: either
/// implementation behind one dispatch point, so `PlacementState` carries
/// "a sampler" without committing to a representation.
#[derive(Clone, Debug)]
pub enum Sampler {
    /// The O(n) linear scan.
    Linear(LinearSampler),
    /// The O(log n) Fenwick tree.
    Fenwick(FenwickSampler),
}

impl Sampler {
    /// Builds the sampler `kind` resolves to for `weights.len()` relays.
    pub fn build(kind: SamplerKind, weights: &[f64]) -> Sampler {
        match kind.resolve(weights.len()) {
            SamplerKind::Linear => Sampler::Linear(LinearSampler::new(weights)),
            SamplerKind::Fenwick => Sampler::Fenwick(FenwickSampler::new(weights)),
            SamplerKind::Auto => unreachable!("resolve() never returns Auto"),
        }
    }

    /// Implementation name for experiment labels and bench keys.
    pub fn name(&self) -> &'static str {
        match self {
            Sampler::Linear(_) => "linear",
            Sampler::Fenwick(_) => "fenwick",
        }
    }

    /// Number of weights (relays).
    pub fn len(&self) -> usize {
        match self {
            Sampler::Linear(s) => s.len(),
            Sampler::Fenwick(s) => s.len(),
        }
    }

    /// Whether the sampler holds no weights. Construction rejects empty
    /// weight sets, so this is always `false`; kept for the standard
    /// `len`/`is_empty` pairing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current weight of index `i`.
    pub fn weight(&self, i: usize) -> f64 {
        match self {
            Sampler::Linear(s) => s.weight(i),
            Sampler::Fenwick(s) => s.weight(i),
        }
    }

    /// Sum of all weights (exact, by the integer contract).
    pub fn total(&self) -> f64 {
        match self {
            Sampler::Linear(s) => s.total(),
            Sampler::Fenwick(s) => s.total(),
        }
    }

    /// Number of indices with positive weight — maintained incrementally,
    /// so the selectable-count check is O(1) instead of an O(n) scan.
    pub fn selectable(&self) -> usize {
        match self {
            Sampler::Linear(s) => s.selectable(),
            Sampler::Fenwick(s) => s.selectable(),
        }
    }

    /// Point update: index `i` now weighs `w` (O(1) linear, O(log n)
    /// Fenwick). This is how the load ledger feeds the sampler.
    pub fn set(&mut self, i: usize, w: f64) {
        match self {
            Sampler::Linear(s) => s.set(i, w),
            Sampler::Fenwick(s) => s.set(i, w),
        }
    }

    /// Draws `k` distinct indices without replacement into `out`
    /// (cleared first), leaving the weights as they were on entry.
    pub fn draw_distinct(&mut self, rng: &mut SimRng, k: usize, out: &mut Vec<usize>) {
        match self {
            Sampler::Linear(s) => s.draw_distinct(rng, k, out),
            Sampler::Fenwick(s) => s.draw_distinct(rng, k, out),
        }
    }

    /// Capacity of the internal draw-undo scratch buffer — the
    /// flat-allocation telemetry the bench asserts on.
    pub fn scratch_capacity(&self) -> usize {
        match self {
            Sampler::Linear(s) => s.undo.capacity(),
            Sampler::Fenwick(s) => s.undo.capacity(),
        }
    }
}

/// The historical weighted draw: per draw, one uniform variate scanned
/// against the weights with running subtraction. O(n) per draw, O(1)
/// point update, zero setup — the right shape for small directories and
/// the oracle the Fenwick implementation is differentially tested
/// against.
#[derive(Clone, Debug)]
pub struct LinearSampler {
    weights: Vec<f64>,
    total: f64,
    positive: usize,
    /// Draw-without-replacement scratch: picks zeroed during a
    /// `draw_distinct` and restored afterwards (LIFO).
    undo: Vec<(usize, f64)>,
}

impl LinearSampler {
    /// Builds over initial weights (validated per the integer contract).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, any weight violates the contract,
    /// or the total exceeds [`MAX_EXACT_TOTAL`].
    pub fn new(weights: &[f64]) -> LinearSampler {
        assert!(!weights.is_empty(), "a sampler needs at least one weight");
        for &w in weights {
            validate_weight(w);
        }
        let total: f64 = weights.iter().sum();
        assert!(
            total <= MAX_EXACT_TOTAL,
            "sampler weight total {total} exceeds the exact-integer range"
        );
        let positive = weights.iter().filter(|&&w| w > 0.0).count();
        LinearSampler {
            weights: weights.to_vec(),
            total,
            positive,
            undo: Vec::new(),
        }
    }

    /// Number of weights.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Always `false` (construction rejects empty weight sets).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Current weight of index `i`.
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// Sum of all weights.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Number of positive weights.
    pub fn selectable(&self) -> usize {
        self.positive
    }

    /// Point update (O(1)).
    pub fn set(&mut self, i: usize, w: f64) {
        validate_weight(w);
        let old = self.weights[i];
        if old > 0.0 {
            self.positive -= 1;
        }
        if w > 0.0 {
            self.positive += 1;
        }
        // Integer-exact: old and w are integers below 2^53, so the
        // delta and the new total are exactly representable.
        self.total = self.total - old + w;
        assert!(
            self.total <= MAX_EXACT_TOTAL,
            "sampler weight total {} exceeds the exact-integer range",
            self.total
        );
        self.weights[i] = w;
    }

    fn draw(&self, rng: &mut SimRng) -> usize {
        debug_assert!(self.total > 0.0);
        let mut x = rng.range_f64(0.0, self.total);
        // `pick` tracks the last positive-weight index visited, so a
        // floating-point overrun of `x` past the running total would
        // still land on a selectable index. Under the integer contract
        // the arithmetic is exact and the fallback never fires, but the
        // shape is kept identical to the legacy scan it replaces.
        let mut pick = usize::MAX;
        for (i, &w) in self.weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            pick = i;
            if x < w {
                break;
            }
            x -= w;
        }
        debug_assert!(pick != usize::MAX, "some weight must remain positive");
        pick
    }

    /// Draws `k` distinct indices without replacement into `out`
    /// (cleared first). Picks are zeroed during the draw and restored
    /// before returning, so the sampler's state is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `k` weights are positive.
    pub fn draw_distinct(&mut self, rng: &mut SimRng, k: usize, out: &mut Vec<usize>) {
        assert!(
            self.positive >= k,
            "only {} of {} weights are positive, cannot draw {k} distinct",
            self.positive,
            self.weights.len()
        );
        out.clear();
        for _ in 0..k {
            let pick = self.draw(rng);
            out.push(pick);
            let w = self.weights[pick];
            self.undo.push((pick, w));
            self.total -= w;
            self.weights[pick] = 0.0; // without replacement
            self.positive -= 1;
        }
        while let Some((i, w)) = self.undo.pop() {
            self.weights[i] = w;
            self.total += w;
            self.positive += 1;
        }
    }
}

/// A Fenwick (binary indexed) tree over the weights: node `j` (1-based)
/// holds the exact sum of the leaf range `(j - lowbit(j), j]`, so a
/// prefix sum is O(log n) and a point update touches O(log n) nodes.
/// A draw descends the implicit tree from the highest power of two,
/// locating the largest prefix `p` with `prefix(p) <= x` — the same
/// index the linear scan returns (module docs), in O(log n).
#[derive(Clone, Debug)]
pub struct FenwickSampler {
    /// 1-based tree nodes; `tree[0]` is unused.
    tree: Vec<f64>,
    /// Leaf weights (0-based), kept for O(1) reads and exact deltas.
    leaf: Vec<f64>,
    total: f64,
    positive: usize,
    /// Highest power of two `<= len` — the descent's starting stride.
    top_bit: usize,
    /// Draw-without-replacement scratch (see [`LinearSampler::undo`]).
    undo: Vec<(usize, f64)>,
}

impl FenwickSampler {
    /// Builds over initial weights in O(n).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, any weight violates the integer
    /// contract, or the total exceeds [`MAX_EXACT_TOTAL`].
    pub fn new(weights: &[f64]) -> FenwickSampler {
        assert!(!weights.is_empty(), "a sampler needs at least one weight");
        for &w in weights {
            validate_weight(w);
        }
        let n = weights.len();
        let total: f64 = weights.iter().sum();
        assert!(
            total <= MAX_EXACT_TOTAL,
            "sampler weight total {total} exceeds the exact-integer range"
        );
        let positive = weights.iter().filter(|&&w| w > 0.0).count();
        // O(n) build: seed each node with its leaf, then push each
        // node's sum into its parent.
        let mut tree = vec![0.0; n + 1];
        tree[1..].copy_from_slice(weights);
        for i in 1..=n {
            let parent = i + (i & i.wrapping_neg());
            if parent <= n {
                tree[parent] += tree[i];
            }
        }
        let mut top_bit = 1usize;
        while top_bit * 2 <= n {
            top_bit *= 2;
        }
        FenwickSampler {
            tree,
            leaf: weights.to_vec(),
            total,
            positive,
            top_bit,
            undo: Vec::new(),
        }
    }

    /// Number of weights.
    pub fn len(&self) -> usize {
        self.leaf.len()
    }

    /// Always `false` (construction rejects empty weight sets).
    pub fn is_empty(&self) -> bool {
        self.leaf.is_empty()
    }

    /// Current weight of index `i`.
    pub fn weight(&self, i: usize) -> f64 {
        self.leaf[i]
    }

    /// Sum of all weights.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Number of positive weights.
    pub fn selectable(&self) -> usize {
        self.positive
    }

    /// Point update (O(log n)).
    pub fn set(&mut self, i: usize, w: f64) {
        validate_weight(w);
        self.apply(i, w);
        assert!(
            self.total <= MAX_EXACT_TOTAL,
            "sampler weight total {} exceeds the exact-integer range",
            self.total
        );
    }

    /// The update core, shared with the draw path's zero/restore (which
    /// re-applies already-validated weights).
    fn apply(&mut self, i: usize, w: f64) {
        let old = self.leaf[i];
        if old == w {
            return;
        }
        if old > 0.0 {
            self.positive -= 1;
        }
        if w > 0.0 {
            self.positive += 1;
        }
        // delta is a difference of integers below 2^53: exact, and every
        // touched node's new value is again an exact integer sum.
        let delta = w - old;
        self.leaf[i] = w;
        self.total += delta;
        let n = self.leaf.len();
        let mut j = i + 1;
        while j <= n {
            self.tree[j] += delta;
            j += j & j.wrapping_neg();
        }
    }

    fn draw(&self, rng: &mut SimRng) -> usize {
        debug_assert!(self.total > 0.0);
        let mut x = rng.range_f64(0.0, self.total);
        // Descend the implicit tree: after the loop, `idx` is the
        // largest position with prefix(idx) <= x, i.e. the 0-based pick.
        let n = self.leaf.len();
        let mut idx = 0usize;
        let mut bit = self.top_bit;
        while bit > 0 {
            let next = idx + bit;
            if next <= n && self.tree[next] <= x {
                x -= self.tree[next];
                idx = next;
            }
            bit >>= 1;
        }
        debug_assert!(
            idx < n && self.leaf[idx] > 0.0,
            "descent must land on a positive leaf"
        );
        idx
    }

    /// Draws `k` distinct indices without replacement into `out`
    /// (cleared first); state is unchanged on return (see
    /// [`LinearSampler::draw_distinct`]).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `k` weights are positive.
    pub fn draw_distinct(&mut self, rng: &mut SimRng, k: usize, out: &mut Vec<usize>) {
        assert!(
            self.positive >= k,
            "only {} of {} weights are positive, cannot draw {k} distinct",
            self.positive,
            self.leaf.len()
        );
        out.clear();
        for _ in 0..k {
            let pick = self.draw(rng);
            out.push(pick);
            self.undo.push((pick, self.leaf[pick]));
            self.apply(pick, 0.0); // without replacement
        }
        while let Some((i, w)) = self.undo.pop() {
            self.apply(i, w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(42)
    }

    #[test]
    fn kinds_resolve_at_the_crossover() {
        assert_eq!(SamplerKind::Auto.resolve(1), SamplerKind::Linear);
        assert_eq!(
            SamplerKind::Auto.resolve(FENWICK_CROSSOVER - 1),
            SamplerKind::Linear
        );
        assert_eq!(
            SamplerKind::Auto.resolve(FENWICK_CROSSOVER),
            SamplerKind::Fenwick
        );
        assert_eq!(SamplerKind::Linear.resolve(100_000), SamplerKind::Linear);
        assert_eq!(SamplerKind::Fenwick.resolve(2), SamplerKind::Fenwick);
    }

    #[test]
    fn fenwick_prefix_structure_is_exact() {
        let weights = [3.0, 0.0, 5.0, 2.0, 0.0, 7.0, 1.0];
        let s = FenwickSampler::new(&weights);
        assert_eq!(s.total(), 18.0);
        assert_eq!(s.selectable(), 5);
        for (i, &w) in weights.iter().enumerate() {
            assert_eq!(s.weight(i), w);
        }
    }

    #[test]
    fn draws_restore_state() {
        let weights = [4.0, 0.0, 6.0, 2.0];
        for kind in [SamplerKind::Linear, SamplerKind::Fenwick] {
            let mut s = Sampler::build(kind, &weights);
            let mut out = Vec::new();
            let mut r = rng();
            for _ in 0..50 {
                s.draw_distinct(&mut r, 3, &mut out);
                assert_eq!(out.len(), 3);
                assert!(out.iter().all(|&i| weights[i] > 0.0));
                assert_eq!(s.total(), 12.0, "{}", s.name());
                assert_eq!(s.selectable(), 3, "{}", s.name());
                for (i, &w) in weights.iter().enumerate() {
                    assert_eq!(s.weight(i), w, "{}", s.name());
                }
            }
        }
    }

    #[test]
    fn set_updates_total_and_selectable() {
        for kind in [SamplerKind::Linear, SamplerKind::Fenwick] {
            let mut s = Sampler::build(kind, &[1.0, 2.0, 3.0]);
            s.set(1, 0.0);
            assert_eq!(s.total(), 4.0);
            assert_eq!(s.selectable(), 2);
            s.set(1, 10.0);
            assert_eq!(s.total(), 14.0);
            assert_eq!(s.selectable(), 3);
            s.set(1, 10.0); // no-op update
            assert_eq!(s.total(), 14.0);
            assert_eq!(s.selectable(), 3);
        }
    }

    #[test]
    fn single_weight_directory_draws_it() {
        for kind in [SamplerKind::Linear, SamplerKind::Fenwick] {
            let mut s = Sampler::build(kind, &[5.0]);
            let mut out = Vec::new();
            s.draw_distinct(&mut rng(), 1, &mut out);
            assert_eq!(out, [0]);
        }
    }

    #[test]
    fn zeroed_prefix_draws_land_past_it() {
        // Leading zeros exercise the descent's skip-over behaviour.
        for kind in [SamplerKind::Linear, SamplerKind::Fenwick] {
            let mut s = Sampler::build(kind, &[0.0, 0.0, 0.0, 1.0, 1.0]);
            let mut out = Vec::new();
            let mut r = rng();
            for _ in 0..20 {
                s.draw_distinct(&mut r, 2, &mut out);
                out.sort_unstable();
                assert_eq!(out, [3, 4], "{}", s.name());
            }
        }
    }

    #[test]
    #[should_panic(expected = "integer-valued")]
    fn fractional_weight_rejected() {
        let _ = LinearSampler::new(&[1.5]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_weight_rejected() {
        let _ = FenwickSampler::new(&[-1.0]);
    }

    #[test]
    #[should_panic(expected = "exact-integer range")]
    fn overflowing_total_rejected() {
        let half = (MAX_EXACT_TOTAL / 2.0).trunc();
        let _ = LinearSampler::new(&[half, half, half]);
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn too_many_draws_panic() {
        let mut out = Vec::new();
        Sampler::build(SamplerKind::Fenwick, &[1.0, 0.0, 1.0]).draw_distinct(
            &mut rng(),
            3,
            &mut out,
        );
    }

    #[test]
    fn draw_without_replacement_exhausts_exactly() {
        // k == positive: the last draw runs on a single positive weight.
        for kind in [SamplerKind::Linear, SamplerKind::Fenwick] {
            let mut s = Sampler::build(kind, &[2.0, 0.0, 3.0, 4.0]);
            let mut out = Vec::new();
            s.draw_distinct(&mut rng(), 3, &mut out);
            out.sort_unstable();
            assert_eq!(out, [0, 2, 3]);
            assert_eq!(s.total(), 9.0, "weights restored");
        }
    }
}
