//! End-to-end queue equivalence: full experiments must be bit-identical
//! whether the simulator runs on the calendar queue (default) or the
//! legacy binary-heap oracle. This is the system-level complement of the
//! `simcore` differential property suite — it proves the queue swap
//! changes *nothing observable*: event ordering, WorldStats counters,
//! cwnd traces, per-cell RTT samples, and completion times all match,
//! across seeds and for both evaluation topologies.
//!
//! Workload runs fingerprint through the shared
//! [`relaynet::runtime::WorldFingerprint`] — the same exact-observables
//! record the async-runtime differential suite (`tests/async_runtime.rs`)
//! compares across executors, so the queue seam and the runtime seam
//! are pinned against one definition of "the same run". The
//! queue × runtime product matrix itself lives in that suite
//! (`queue_and_runtime_seams_compose`).

use circuitstart::prelude::*;
use relaynet::builder::{PathScenario, StarScenario};
use relaynet::selection::all_policies;
use relaynet::workload::{ArrivalSpec, ChurnSpec, WorkloadSpec};
use relaynet::{DirectoryConfig, WorldConfig, WorldStats};
use simcore::event::QueueKind;
use simcore::time::SimDuration;

/// Everything observable about one fig-1-style path run.
#[derive(PartialEq, Debug)]
struct PathFingerprint {
    cwnd_trace: Vec<(f64, u32)>,
    rtt_samples: usize,
    transfer_time: Option<f64>,
    cells_delivered: u64,
    stats: (u64, u64, u64, u64, u64, u64, u64, u64),
    events_processed: u64,
}

#[allow(clippy::type_complexity)]
fn stats_tuple(s: &WorldStats) -> (u64, u64, u64, u64, u64, u64, u64, u64) {
    (
        s.cells_sent,
        s.feedback_sent,
        s.protocol_errors,
        s.cells_dropped_closed,
        s.destroys_sent,
        s.cells_drained,
        s.slots_reclaimed,
        s.rebuilds,
    )
}

fn run_path(distance: usize, seed: u64, kind: QueueKind) -> PathFingerprint {
    let base = fig1_trace(distance, Algorithm::CircuitStart);
    let scenario = PathScenario {
        hops: base.hops(),
        file_bytes: 400_000,
        world: WorldConfig::default(),
        ..Default::default()
    };
    let (mut sim, h) =
        scenario.build_with_queue(Algorithm::CircuitStart.factory(base.cc), seed, kind);
    sim.run();
    let world = sim.world();
    let r = world.result_of(h.circ);
    PathFingerprint {
        cwnd_trace: world
            .source_cwnd_trace(h.circ)
            .expect("tracing enabled")
            .iter()
            .map(|&(t, c)| (t.as_secs_f64(), c))
            .collect(),
        rtt_samples: world.source_rtt_trace(h.circ).map_or(0, <[_]>::len),
        transfer_time: r.transfer_time().map(|d: SimDuration| d.as_secs_f64()),
        cells_delivered: r.cells_delivered,
        stats: stats_tuple(world.stats()),
        events_processed: sim.events_processed(),
    }
}

#[test]
fn fig1_path_runs_identically_on_both_queues_across_seeds() {
    for seed in [1u64, 7, 42] {
        for distance in [1usize, 3] {
            let cal = run_path(distance, seed, QueueKind::Calendar);
            let heap = run_path(distance, seed, QueueKind::BinaryHeap);
            assert_eq!(
                cal, heap,
                "seed {seed} distance {distance}: queue implementations diverge"
            );
        }
    }
}

#[test]
fn star_runs_identically_on_both_queues_across_seeds() {
    let scenario = StarScenario {
        circuits: 5,
        file_bytes: 50_000,
        directory: DirectoryConfig {
            relays: 8,
            bandwidth_mbps: (15.0, 80.0),
            delay_ms: (3.0, 9.0),
        },
        ..Default::default()
    };
    let run = |seed, kind| {
        let (mut sim, circuits) = scenario.build_with_queue(
            Algorithm::CircuitStart.factory(CcConfig::default()),
            seed,
            kind,
        );
        run_to_completion(&mut sim);
        let world = sim.world();
        let times: Vec<Option<f64>> = circuits
            .iter()
            .map(|&c| world.result_of(c).transfer_time().map(|d| d.as_secs_f64()))
            .collect();
        (times, stats_tuple(world.stats()), sim.events_processed())
    };
    for seed in [3u64, 11, 99] {
        assert_eq!(
            run(seed, QueueKind::Calendar),
            run(seed, QueueKind::BinaryHeap),
            "seed {seed}: star experiment diverges between queue implementations"
        );
    }
}

#[test]
fn baseline_algorithms_also_match() {
    // The equivalence must hold regardless of the controller in play.
    let scenario = PathScenario {
        hops: fig1_trace(1, Algorithm::ClassicBacktap).hops(),
        file_bytes: 200_000,
        world: WorldConfig::default(),
        ..Default::default()
    };
    // CcFactory is not Clone, so store constructors and build one per run.
    let make_classic = || Algorithm::ClassicBacktap.factory(CcConfig::default());
    let make_fixed = || relaynet::builder::fixed_window_factory(16);
    let factories: [(&str, &dyn Fn() -> relaynet::CcFactory); 2] =
        [("classic", &make_classic), ("fixed", &make_fixed)];
    for (name, make) in factories {
        let run = |kind| {
            let (mut sim, h) = scenario.build_with_queue(make(), 5, kind);
            sim.run();
            let w = sim.world();
            (
                w.result_of(h.circ).cells_delivered,
                stats_tuple(w.stats()),
                sim.events_processed(),
            )
        };
        let cal = run(QueueKind::Calendar);
        let heap = run(QueueKind::BinaryHeap);
        assert_eq!(cal, heap, "{name}: diverges between queue implementations");
    }
}

/// Everything observable about a churning multi-stream workload run:
/// per-flow outcomes, slab telemetry, counters, event count. Churn is
/// the first workload that reclaims and reuses circuit-id slots, route
/// slots, and pooled payload buffers mid-run, so the fingerprint pins
/// all of that too — via the shared exact-observables record of the
/// async runtime.
use relaynet::runtime::fingerprint as workload_fingerprint;

fn churn_workload() -> WorkloadSpec {
    WorkloadSpec {
        streams_per_circuit: 3,
        arrival: ArrivalSpec::OnOff {
            burst: 2,
            gap_ms: (10.0, 40.0),
        },
        churn: Some(ChurnSpec {
            teardown_after_ms: (35.0, 90.0),
            rebuild_delay_ms: 4.0,
            cycles: 2,
        }),
    }
}

#[test]
fn churn_path_runs_identically_on_both_queues_across_seeds() {
    let scenario = PathScenario {
        hops: fig1_trace(2, Algorithm::CircuitStart).hops(),
        file_bytes: 150_000,
        workload: churn_workload(),
        faults: None,
        world: WorldConfig::default(),
    };
    let run = |seed, kind| {
        let (mut sim, _) = scenario.build_with_queue(
            Algorithm::CircuitStart.factory(CcConfig::default()),
            seed,
            kind,
        );
        run_to_completion(&mut sim);
        workload_fingerprint(sim.world(), sim.events_processed())
    };
    for seed in [2u64, 29, 77] {
        let cal = run(seed, QueueKind::Calendar);
        let heap = run(seed, QueueKind::BinaryHeap);
        assert!(
            cal.stats.rebuilds >= 1,
            "seed {seed}: churn must actually rebuild (got {cal:?})"
        );
        assert_eq!(
            cal, heap,
            "seed {seed}: churn path experiment diverges between queues"
        );
    }
}

#[test]
fn churn_star_runs_identically_on_both_queues_across_seeds() {
    let scenario = StarScenario {
        circuits: 4,
        file_bytes: 60_000,
        directory: DirectoryConfig {
            relays: 7,
            bandwidth_mbps: (15.0, 60.0),
            delay_ms: (2.0, 8.0),
        },
        workload: churn_workload(),
        ..Default::default()
    };
    let run = |seed, kind| {
        let (mut sim, _) = scenario.build_with_queue(
            Algorithm::CircuitStart.factory(CcConfig::default()),
            seed,
            kind,
        );
        run_to_completion(&mut sim);
        workload_fingerprint(sim.world(), sim.events_processed())
    };
    for seed in [5u64, 41, 83] {
        let cal = run(seed, QueueKind::Calendar);
        let heap = run(seed, QueueKind::BinaryHeap);
        assert!(
            cal.stats.rebuilds >= 1,
            "seed {seed}: churn must actually rebuild"
        );
        assert_eq!(
            cal, heap,
            "seed {seed}: churn star experiment diverges between queues"
        );
    }
}

/// Every path-selection policy must preserve queue equivalence, on both
/// evaluation topologies. The star runs a churning workload so rebuild
/// re-selection — the one place a policy draws randomness *mid-run*,
/// inside event handling — is exercised; the load view at rebuild time
/// must therefore also be bit-identical across queue implementations.
/// The path topology has no directory (placement seam uninstalled); it
/// rides along once per seed to pin the policy-free degenerate case:
/// churn there rebuilds over the original path.
#[test]
fn selection_policies_run_identically_on_both_queues_across_seeds() {
    let policies = all_policies();
    let path_scenario = PathScenario {
        hops: fig1_trace(2, Algorithm::CircuitStart).hops(),
        file_bytes: 100_000,
        workload: churn_workload(),
        faults: None,
        world: WorldConfig::default(),
    };
    let run_path = |seed, kind| {
        let (mut sim, _) = path_scenario.build_with_queue(
            Algorithm::CircuitStart.factory(CcConfig::default()),
            seed,
            kind,
        );
        run_to_completion(&mut sim);
        workload_fingerprint(sim.world(), sim.events_processed())
    };
    for seed in [5u64, 41, 83] {
        assert_eq!(
            run_path(seed, QueueKind::Calendar),
            run_path(seed, QueueKind::BinaryHeap),
            "seed {seed}: churn path experiment diverges between queues"
        );
    }
    for policy in policies {
        let star_scenario = StarScenario {
            circuits: 3,
            file_bytes: 50_000,
            directory: DirectoryConfig {
                relays: 7,
                bandwidth_mbps: (15.0, 60.0),
                delay_ms: (2.0, 8.0),
            },
            workload: churn_workload(),
            selection: policy.clone(),
            ..Default::default()
        };
        let run_star = |seed, kind| {
            let (mut sim, _) = star_scenario.build_with_queue(
                Algorithm::CircuitStart.factory(CcConfig::default()),
                seed,
                kind,
            );
            run_to_completion(&mut sim);
            let loads = sim.world().relay_loads().expect("placement").to_vec();
            (
                workload_fingerprint(sim.world(), sim.events_processed()),
                loads,
            )
        };
        for seed in [5u64, 41, 83] {
            let cal = run_star(seed, QueueKind::Calendar);
            let heap = run_star(seed, QueueKind::BinaryHeap);
            assert!(
                cal.0.stats.rebuilds >= 1,
                "{} seed {seed}: churn must actually rebuild",
                policy.name()
            );
            assert_eq!(
                cal,
                heap,
                "{} seed {seed}: star experiment diverges between queues",
                policy.name()
            );
        }
    }
}
