//! Bit-reproducibility: the whole point of a deterministic simulator is
//! that a seed pins down every event. These tests re-run complete
//! experiments and require identical traces, byte for byte.

use circuitstart::prelude::*;
use relaynet::StarScenario;

fn trace_fingerprint(cfg: &TraceScenarioConfig) -> (Vec<(f64, u32)>, Option<f64>, u64) {
    let report = run_trace(cfg);
    (
        report.cwnd_cells.clone(),
        report.result.transfer_time().map(|d| d.as_secs_f64()),
        report.result.cells_delivered,
    )
}

#[test]
fn trace_runs_are_bit_identical() {
    let mut cfg = fig1_trace(1, Algorithm::CircuitStart);
    cfg.file_bytes = 300_000;
    let a = trace_fingerprint(&cfg);
    let b = trace_fingerprint(&cfg);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_change_only_what_randomness_touches() {
    // The path geometry is fixed; the only seeded choice is handshake
    // bytes, which must not affect timing at all.
    let mut cfg = fig1_trace(1, Algorithm::CircuitStart);
    cfg.file_bytes = 200_000;
    let a = trace_fingerprint(&cfg);
    cfg.seed = 999;
    let b = trace_fingerprint(&cfg);
    assert_eq!(
        a, b,
        "handshake randomness must not perturb deterministic timing"
    );
}

#[test]
fn star_runs_are_bit_identical() {
    let scenario = StarScenario {
        circuits: 6,
        file_bytes: 60_000,
        directory: relaynet::DirectoryConfig {
            relays: 8,
            bandwidth_mbps: (15.0, 80.0),
            delay_ms: (3.0, 9.0),
        },
        ..Default::default()
    };
    let run = || {
        let (mut sim, circuits) =
            scenario.build(Algorithm::CircuitStart.factory(CcConfig::default()), 42);
        run_to_completion(&mut sim);
        let world = sim.world();
        let times: Vec<Option<f64>> = circuits
            .iter()
            .map(|&c| world.result_of(c).transfer_time().map(|d| d.as_secs_f64()))
            .collect();
        (times, world.stats().cells_sent, world.stats().feedback_sent)
    };
    assert_eq!(run(), run());
}

#[test]
fn star_seed_changes_topology_and_times() {
    let scenario = StarScenario {
        circuits: 6,
        file_bytes: 60_000,
        directory: relaynet::DirectoryConfig {
            relays: 8,
            bandwidth_mbps: (15.0, 80.0),
            delay_ms: (3.0, 9.0),
        },
        ..Default::default()
    };
    let run = |seed| {
        let (mut sim, circuits) =
            scenario.build(Algorithm::CircuitStart.factory(CcConfig::default()), seed);
        run_to_completion(&mut sim);
        let world = sim.world();
        circuits
            .iter()
            .map(|&c| world.result_of(c).transfer_time().map(|d| d.as_secs_f64()))
            .collect::<Vec<_>>()
    };
    let a = run(1);
    let b = run(2);
    assert_ne!(a, b, "different seeds must sample different networks");
}

#[test]
fn cdf_experiment_is_reproducible() {
    let mut cfg = fig1_cdf();
    cfg.star.circuits = 5;
    cfg.star.file_bytes = 50_000;
    cfg.star.directory.relays = 8;
    cfg.repetitions = 1;
    let a = run_cdf(&cfg);
    let b = run_cdf(&cfg);
    for (x, y) in a.series.iter().zip(&b.series) {
        assert_eq!(x.algorithm_key, y.algorithm_key);
        assert_eq!(x.cdf.sorted_samples(), y.cdf.sorted_samples());
    }
}
