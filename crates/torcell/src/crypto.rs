//! Onion-layering stand-in.
//!
//! # ⚠ Not cryptography
//!
//! Real Tor wraps relay payloads in per-hop AES-CTR layers with SHA-1
//! running digests. The CircuitStart experiments measure **congestion
//! dynamics**; the only properties of the onion layers that matter there
//! are (a) payload size is preserved by each layer and (b) each hop applies
//! or removes exactly one layer. This module reproduces that *structure*
//! with a keyed xorshift keystream — deterministic, size-preserving,
//! trivially invertible, and completely insecure. See DESIGN.md §2 for the
//! substitution rationale.

use crate::cell::RelayCell;

/// A 64-bit layer key (stand-in for negotiated key material).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LayerKey(pub u64);

impl LayerKey {
    /// Derives a key from a handshake blob, mimicking key agreement: both
    /// ends of a CREATE/CREATED exchange derive the same key.
    pub fn from_handshake(handshake: &[u8]) -> LayerKey {
        let mut k: u64 = 0x2545_F491_4F6C_DD1D;
        for &b in handshake {
            k ^= u64::from(b);
            k = k.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
        }
        // Avoid the degenerate all-zero xorshift state.
        LayerKey(if k == 0 { 1 } else { k })
    }
}

/// One onion layer: a keyed, position-synchronized XOR keystream.
///
/// Applying the layer twice with the same starting offset is the identity,
/// which is exactly how the tests verify wrap/unwrap symmetry.
#[derive(Clone, Debug)]
pub struct LayerCipher {
    key: LayerKey,
}

impl LayerCipher {
    /// Creates a cipher from a key.
    pub fn new(key: LayerKey) -> LayerCipher {
        LayerCipher { key }
    }

    /// XORs the keystream for (`key`, `nonce`) over `data` in place.
    /// `nonce` must match between apply and un-apply; callers use the
    /// per-cell sequence number.
    ///
    /// The keystream advances one xorshift64* word per 8 payload bytes;
    /// whole words are XORed at machine width (this runs on every cell at
    /// every hop), with a byte tail for the remainder. The byte sequence
    /// is identical to applying the stream byte by byte.
    pub fn apply(&self, nonce: u64, data: &mut [u8]) {
        let mut state = self.key.0 ^ nonce.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        if state == 0 {
            state = 0x9E37_79B9_7F4A_7C15;
        }
        let mut next_word = move || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let mut chunks = data.chunks_exact_mut(8);
        for chunk in &mut chunks {
            let buf: &mut [u8; 8] = chunk.try_into().expect("exact chunk");
            *buf = (u64::from_le_bytes(*buf) ^ next_word()).to_le_bytes();
        }
        let tail = chunks.into_remainder();
        if !tail.is_empty() {
            let word = next_word().to_le_bytes();
            for (byte, k) in tail.iter_mut().zip(word) {
                *byte ^= k;
            }
        }
    }
}

/// The client-side stack of layers for a circuit: layer `0` is shared with
/// the first relay, layer `n-1` with the exit.
#[derive(Clone, Debug, Default)]
pub struct OnionStack {
    layers: Vec<LayerCipher>,
}

impl OnionStack {
    /// Creates an empty stack.
    pub fn new() -> OnionStack {
        OnionStack { layers: Vec::new() }
    }

    /// Appends the layer shared with the next relay on the path.
    pub fn push_layer(&mut self, key: LayerKey) {
        self.layers.push(LayerCipher::new(key));
    }

    /// Number of layers (circuit length).
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` if no layers have been negotiated yet.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Client → exit: wraps payload in all layers, outermost (first relay)
    /// last, so the first relay strips first.
    pub fn wrap_outbound(&self, nonce: u64, cell: &mut RelayCell) {
        for layer in self.layers.iter().rev() {
            layer.apply(nonce, &mut cell.data);
        }
    }

    /// Exit → client: removes all layers at once (the client holds every
    /// key). Relays along the path each *added* one layer with
    /// [`LayerCipher::apply`].
    pub fn unwrap_inbound(&self, nonce: u64, cell: &mut RelayCell) {
        for layer in &self.layers {
            layer.apply(nonce, &mut cell.data);
        }
    }
}

/// Client-side onion state with **per-layer cell counters**, mirroring how
/// Tor's stateful AES-CTR streams stay synchronized when cells leave the
/// circuit early ("leaky pipe"): a cell recognized at hop `k` advances only
/// the counters of layers `0..=k`, because hops beyond `k` never see it.
///
/// Relays keep a single per-direction counter (they process every cell
/// that traverses them exactly once), so both sides stay in lockstep.
#[derive(Clone, Debug, Default)]
pub struct OnionRoute {
    layers: Vec<LayerCipher>,
    /// Client-side counter per layer, forward direction.
    fwd_counters: Vec<u64>,
    /// Client-side counter per layer, backward direction.
    bwd_counters: Vec<u64>,
}

impl OnionRoute {
    /// Creates an empty route (no hops negotiated yet).
    pub fn new() -> OnionRoute {
        OnionRoute::default()
    }

    /// Appends the layer shared with the newly added hop.
    pub fn push_layer(&mut self, key: LayerKey) {
        self.layers.push(LayerCipher::new(key));
        self.fwd_counters.push(0);
        self.bwd_counters.push(0);
    }

    /// Number of negotiated hops.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` before the first hop is negotiated.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Wraps an outbound relay cell so that it is recognized at layer
    /// `hop` (0 = first relay). Layers are applied innermost-first, so the
    /// first relay strips first; counters of layers `0..=hop` advance.
    ///
    /// # Panics
    ///
    /// Panics if `hop` is out of range.
    pub fn wrap_for_hop(&mut self, hop: usize, cell: &mut RelayCell) {
        assert!(
            hop < self.layers.len(),
            "wrap_for_hop: hop {hop} out of range"
        );
        for i in (0..=hop).rev() {
            self.layers[i].apply(self.fwd_counters[i], &mut cell.data);
            self.fwd_counters[i] += 1;
        }
    }

    /// Unwraps an inbound (backward) relay cell layer by layer until the
    /// digest verifies, returning the hop it originated from. Counters of
    /// every attempted layer advance, exactly like Tor's stream ciphers.
    ///
    /// Returns `None` (after consuming one count on every layer) if no
    /// layer produces a valid digest — a corrupt or misrouted cell.
    pub fn unwrap_inbound(&mut self, cell: &mut RelayCell) -> Option<usize> {
        for i in 0..self.layers.len() {
            self.layers[i].apply(self.bwd_counters[i], &mut cell.data);
            self.bwd_counters[i] += 1;
            if cell.digest_ok() {
                return Some(i);
            }
        }
        None
    }
}

/// Relay-side cipher state for one circuit: one layer key and one counter
/// per direction.
#[derive(Clone, Debug)]
pub struct RelayCrypt {
    cipher: LayerCipher,
    fwd_counter: u64,
    bwd_counter: u64,
}

impl RelayCrypt {
    /// Creates relay-side state from the hop's key.
    pub fn new(key: LayerKey) -> RelayCrypt {
        RelayCrypt {
            cipher: LayerCipher::new(key),
            fwd_counter: 0,
            bwd_counter: 0,
        }
    }

    /// Strips this relay's layer from a forward cell (client → exit) and
    /// reports whether the cell is now *recognized* (digest valid ⇒ this
    /// relay is the target and must consume it).
    pub fn strip_forward(&mut self, cell: &mut RelayCell) -> bool {
        self.cipher.apply(self.fwd_counter, &mut cell.data);
        self.fwd_counter += 1;
        cell.digest_ok()
    }

    /// Adds this relay's layer to a backward cell (toward the client) —
    /// used both for cells it forwards and for cells it originates.
    pub fn add_backward(&mut self, cell: &mut RelayCell) {
        self.cipher.apply(self.bwd_counter, &mut cell.data);
        self.bwd_counter += 1;
    }
}

/// Payload digest — a keyed multiply-rotate mix over 8-byte words.
///
/// Stands in for Tor's running SHA-1 "recognized" digest: it lets the
/// recognizing hop detect payload corruption in tests, nothing more — so
/// it is built for throughput (one multiply per 8 bytes; this runs at
/// every hop of every cell for leaky-pipe recognition), not security.
pub fn payload_digest(data: &[u8]) -> u32 {
    let mut h: u64 = 0x811c_9dc5_2545_f491;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("exact chunk"));
        h = (h ^ word)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(23);
    }
    let mut tail = 0u64;
    for (i, &b) in chunks.remainder().iter().enumerate() {
        tail |= u64::from(b) << (8 * i);
    }
    h = (h ^ tail ^ (data.len() as u64)).wrapping_mul(0x2545_F491_4F6C_DD1D);
    (h >> 32) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::StreamId;

    #[test]
    fn digest_distinguishes_payloads() {
        assert_ne!(payload_digest(b"hello"), payload_digest(b"hellp"));
        // Length is mixed in, so a zero-padded tail cannot collide with a
        // shorter payload, and single-byte flips in any word position are
        // detected.
        assert_ne!(payload_digest(b""), payload_digest(&[0]));
        assert_ne!(payload_digest(&[0; 8]), payload_digest(&[0; 16]));
        let mut long = [7u8; 64];
        let base = payload_digest(&long);
        for i in 0..64 {
            long[i] ^= 0x80;
            assert_ne!(payload_digest(&long), base, "flip at {i} undetected");
            long[i] ^= 0x80;
        }
    }

    #[test]
    fn key_from_handshake_is_deterministic_and_sensitive() {
        let a = LayerKey::from_handshake(&[1, 2, 3]);
        let b = LayerKey::from_handshake(&[1, 2, 3]);
        let c = LayerKey::from_handshake(&[1, 2, 4]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a.0, 0);
    }

    #[test]
    fn cipher_is_involutive() {
        let cipher = LayerCipher::new(LayerKey(0xDEADBEEF));
        let original: Vec<u8> = (0..=255).collect();
        let mut data = original.clone();
        cipher.apply(42, &mut data);
        assert_ne!(data, original, "keystream must change the data");
        cipher.apply(42, &mut data);
        assert_eq!(data, original, "applying twice must restore");
    }

    #[test]
    fn different_nonces_differ() {
        let cipher = LayerCipher::new(LayerKey(7));
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        cipher.apply(1, &mut a);
        cipher.apply(2, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_key_zero_nonce_still_encrypts() {
        // Engineered degenerate case: state must not collapse to zero.
        let cipher = LayerCipher::new(LayerKey(0));
        let mut data = vec![0u8; 32];
        cipher.apply(0, &mut data);
        assert_ne!(data, vec![0u8; 32]);
    }

    #[test]
    fn onion_stack_round_trip_through_relays() {
        // Client wraps 3 layers; each relay strips its own; exit sees
        // plaintext.
        let keys = [LayerKey(11), LayerKey(22), LayerKey(33)];
        let mut stack = OnionStack::new();
        for k in keys {
            stack.push_layer(k);
        }
        assert_eq!(stack.len(), 3);

        let plaintext = b"the quick brown onion".to_vec();
        let mut cell = RelayCell::data(StreamId(1), plaintext.clone());
        let nonce = 99;
        stack.wrap_outbound(nonce, &mut cell);
        assert_ne!(cell.data, plaintext);

        // Relay 0 (guard) strips the outermost layer, then relay 1, then 2.
        for k in keys {
            LayerCipher::new(k).apply(nonce, &mut cell.data);
        }
        assert_eq!(cell.data, plaintext);
        assert!(cell.digest_ok(), "digest computed on plaintext must verify");
    }

    #[test]
    fn onion_stack_inbound_round_trip() {
        let keys = [LayerKey(5), LayerKey(6)];
        let mut stack = OnionStack::new();
        for k in keys {
            stack.push_layer(k);
        }
        let plaintext = b"reply data".to_vec();
        let mut cell = RelayCell::data(StreamId(2), plaintext.clone());
        let nonce = 7;
        // Exit → client: each relay adds its layer...
        for k in keys.iter().rev() {
            LayerCipher::new(*k).apply(nonce, &mut cell.data);
        }
        // ...and the client removes them all.
        stack.unwrap_inbound(nonce, &mut cell);
        assert_eq!(cell.data, plaintext);
    }

    #[test]
    fn empty_stack_is_identity() {
        let stack = OnionStack::new();
        assert!(stack.is_empty());
        let mut cell = RelayCell::data(StreamId(1), vec![1, 2, 3]);
        stack.wrap_outbound(0, &mut cell);
        assert_eq!(cell.data, vec![1, 2, 3]);
    }

    /// Builds a matched client route + relay states for `n` hops.
    fn route_of(n: usize) -> (OnionRoute, Vec<RelayCrypt>) {
        let mut route = OnionRoute::new();
        let mut relays = Vec::new();
        for i in 0..n {
            let key = LayerKey::from_handshake(&[i as u8, 0xAA, 7]);
            route.push_layer(key);
            relays.push(RelayCrypt::new(key));
        }
        (route, relays)
    }

    #[test]
    fn onion_route_full_path_recognition() {
        let (mut route, mut relays) = route_of(3);
        let mut cell = RelayCell::data(StreamId(1), b"to the exit".to_vec());
        route.wrap_for_hop(2, &mut cell);
        assert!(
            !relays[0].strip_forward(&mut cell),
            "guard must not recognize"
        );
        assert!(
            !relays[1].strip_forward(&mut cell),
            "middle must not recognize"
        );
        assert!(relays[2].strip_forward(&mut cell), "exit recognizes");
        assert_eq!(cell.data, b"to the exit");
    }

    #[test]
    fn leaky_pipe_counters_stay_in_sync() {
        // Cell 0 targets hop 0 (like an EXTEND), cell 1 targets hop 2.
        // Hop 2's counter must not advance for cell 0.
        let (mut route, mut relays) = route_of(3);

        let mut early = RelayCell::data(StreamId(0), b"extend".to_vec());
        route.wrap_for_hop(0, &mut early);
        assert!(relays[0].strip_forward(&mut early), "hop 0 consumes cell 0");

        let mut data = RelayCell::data(StreamId(1), b"payload".to_vec());
        route.wrap_for_hop(2, &mut data);
        assert!(!relays[0].strip_forward(&mut data));
        assert!(!relays[1].strip_forward(&mut data));
        assert!(relays[2].strip_forward(&mut data), "hop 2 still in sync");
        assert_eq!(data.data, b"payload");
    }

    #[test]
    fn backward_origination_from_any_hop() {
        let (mut route, mut relays) = route_of(3);
        // Hop 1 originates a backward cell (e.g. EXTENDED); hop 0 adds its
        // layer in transit; the client unwraps and learns the origin.
        let mut cell = RelayCell::data(StreamId(0), b"extended".to_vec());
        relays[1].add_backward(&mut cell);
        relays[0].add_backward(&mut cell);
        let origin = route.unwrap_inbound(&mut cell);
        assert_eq!(origin, Some(1));
        assert_eq!(cell.data, b"extended");

        // Next backward cell from the exit: all three layers.
        let mut cell2 = RelayCell::data(StreamId(1), b"connected".to_vec());
        relays[2].add_backward(&mut cell2);
        relays[1].add_backward(&mut cell2);
        relays[0].add_backward(&mut cell2);
        assert_eq!(route.unwrap_inbound(&mut cell2), Some(2));
        assert_eq!(cell2.data, b"connected");
    }

    #[test]
    fn unwrap_of_garbage_returns_none() {
        let (mut route, _) = route_of(2);
        let mut cell = RelayCell {
            cmd: crate::cell::RelayCommand::Data,
            stream: StreamId(1),
            digest: 0xBAD,
            data: b"garbage".to_vec(),
        };
        assert_eq!(route.unwrap_inbound(&mut cell), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn wrap_for_unknown_hop_panics() {
        let (mut route, _) = route_of(1);
        let mut cell = RelayCell::data(StreamId(1), vec![]);
        route.wrap_for_hop(1, &mut cell);
    }

    #[test]
    fn many_cells_stay_in_sync_under_mixed_targets() {
        let (mut route, mut relays) = route_of(3);
        // Deterministic pseudo-random interleaving of targets.
        let mut x = 7u64;
        for round in 0..200u32 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let hop = (x % 3) as usize;
            let payload = round.to_be_bytes().to_vec();
            let mut cell = RelayCell::data(StreamId(1), payload.clone());
            route.wrap_for_hop(hop, &mut cell);
            let mut recognized_at = None;
            for (i, relay) in relays.iter_mut().enumerate().take(hop + 1) {
                if relay.strip_forward(&mut cell) {
                    recognized_at = Some(i);
                    break;
                }
            }
            assert_eq!(recognized_at, Some(hop), "round {round}");
            assert_eq!(cell.data, payload);
        }
    }
}
