//! The overlay engine: a [`simcore::World`] tying relays, circuits,
//! transports, and the packet network together.
//!
//! # Protocol summary (all rules are local; see DESIGN.md §4)
//!
//! * **Circuit build** is Tor's telescope: the client CREATEs the first
//!   hop, then sends EXTEND relay cells that the current last relay
//!   converts into CREATEs toward the next node. Link-local circuit ids
//!   are negotiated per connection; onion layers are derived from the
//!   CREATE handshakes.
//! * **Recognition** is leaky-pipe, as in Tor: a relay strips its layer
//!   from every forward relay cell; if the digest then verifies, the cell
//!   is for this hop and is consumed, otherwise it is forwarded.
//! * **Feedback** (the BackTap/CircuitStart mechanism): whenever a node
//!   takes a cell *out* of a per-circuit queue — forwarding it toward the
//!   successor or consuming it locally — it sends a 20-byte feedback frame
//!   to the neighbour the cell came from, echoing that neighbour's per-hop
//!   sequence number. Windows grow on feedback, never on end-to-end ACKs.
//! * **Transfer**: after the build, the client opens a stream (BEGIN /
//!   CONNECTED) and pumps DATA cells, each wrapped in onion layers and
//!   subject to the per-hop window; the server verifies, counts, and
//!   timestamps them, and the END cell completes the transfer.

use netsim::net::{Net, NetEvent, NodeId, SendOutcome};
use rand::RngCore;
use simcore::rng::SimRng;
use simcore::sim::{Context, World};
use simcore::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

use backtap::hop::HopTransport;
use torcell::cell::{Cell, CellBody, Feedback, RelayCell, RelayCommand, HANDSHAKE_LEN};
use torcell::crypto::{payload_digest, LayerKey, RelayCrypt};
use torcell::ids::{CircuitId, StreamId};

use crate::circuit::{CircuitInfo, CircuitResult};
use crate::event::TorEvent;
use crate::ids::{CircId, Direction, OverlayId};
use crate::node::{
    CcFactory, ClientApp, ClientStage, HopCtx, HopDir, NodeCircuit, NodeRole, OverlayNode,
    PendingConfirm, QueuedCell, ServerApp,
};
use crate::router::Router;
use crate::scheduler::LinkScheduler;
use crate::wire::{FramePayload, WireFrame};

/// Reason code carried by the END cell when a transfer finishes normally.
pub const END_REASON_DONE: u8 = 1;
/// Reason code carried by DESTROY cells on explicit teardown.
pub const DESTROY_REASON_FINISHED: u8 = 9;

/// Global behaviour switches.
#[derive(Clone, Copy, Debug)]
pub struct WorldConfig {
    /// Verify DATA payload bytes at the server against the deterministic
    /// fill pattern (cheap; catches crypto/ordering bugs).
    pub verify_payload: bool,
    /// Record the client's forward congestion window over time (the
    /// Figure 1 trace).
    pub trace_client_cwnd: bool,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            verify_payload: true,
            trace_client_cwnd: true,
        }
    }
}

/// Global protocol counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorldStats {
    /// Cell frames handed to the link layer.
    pub cells_sent: u64,
    /// Feedback frames handed to the link layer.
    pub feedback_sent: u64,
    /// Protocol violations observed (must stay 0 in healthy runs).
    pub protocol_errors: u64,
    /// Relay cells dropped because their circuit was torn down.
    pub cells_dropped_closed: u64,
}

/// The deterministic fill pattern for DATA payloads: byte `i` of cell
/// `idx` on circuit `circ`.
pub fn fill_pattern(circ: CircId, idx: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((u64::from(circ.0) * 131 + idx * 31 + i as u64) & 0xFF) as u8)
        .collect()
}

/// The overlay world. Construct with [`TorNetwork::new`], add nodes and
/// circuits, then drive with a [`simcore::Simulator`] after scheduling
/// [`TorEvent::StartCircuit`] events.
pub struct TorNetwork {
    net: Net<WireFrame>,
    router: Router,
    nodes: Vec<OverlayNode>,
    /// Overlay index → backing network node (read-only after setup; kept
    /// separate so hot paths can use it while a node is borrowed mutably).
    net_node_of: Vec<NodeId>,
    overlay_by_net: BTreeMap<NodeId, OverlayId>,
    circuits: Vec<CircuitInfo>,
    factory: CcFactory,
    cfg: WorldConfig,
    rng: SimRng,
    next_link_circ_id: u32,
    /// Per-link round-robin circuit schedulers (overlay egress links; the
    /// hub's links stay FIFO — the backbone is not ours to schedule).
    link_sched: Vec<LinkScheduler>,
    stats: WorldStats,
}

impl TorNetwork {
    /// Creates an overlay over an already-built network and routing table.
    pub fn new(
        net: Net<WireFrame>,
        router: Router,
        cfg: WorldConfig,
        factory: CcFactory,
        rng: SimRng,
    ) -> TorNetwork {
        let link_sched = (0..net.link_count()).map(|_| LinkScheduler::new()).collect();
        TorNetwork {
            net,
            router,
            nodes: Vec::new(),
            net_node_of: Vec::new(),
            overlay_by_net: BTreeMap::new(),
            circuits: Vec::new(),
            factory,
            cfg,
            rng,
            next_link_circ_id: 1,
            link_sched,
            stats: WorldStats::default(),
        }
    }

    /// Registers an overlay participant backed by network node `net_node`.
    pub fn add_overlay(&mut self, net_node: NodeId, role: NodeRole, name: &str) -> OverlayId {
        let id = OverlayId(u32::try_from(self.nodes.len()).expect("too many overlay nodes"));
        assert!(
            self.overlay_by_net.insert(net_node, id).is_none(),
            "network node already hosts an overlay node"
        );
        self.nodes
            .push(OverlayNode::new(id, net_node, role, name.to_string()));
        self.net_node_of.push(net_node);
        id
    }

    /// Registers a circuit over `path` transferring `file_bytes`; start it
    /// by scheduling [`TorEvent::StartCircuit`].
    pub fn add_circuit(&mut self, path: Vec<OverlayId>, file_bytes: u64) -> CircId {
        assert!(path.len() >= 2, "a circuit needs at least client and server");
        for &n in &path {
            assert!(n.index() < self.nodes.len(), "unknown overlay node on path");
        }
        let id = CircId(u32::try_from(self.circuits.len()).expect("too many circuits"));
        self.circuits.push(CircuitInfo {
            path,
            file_bytes,
            started_at: None,
        });
        id
    }

    /// The underlying packet network (for link telemetry).
    pub fn net(&self) -> &Net<WireFrame> {
        &self.net
    }

    /// Global counters.
    pub fn stats(&self) -> &WorldStats {
        &self.stats
    }

    /// The static record of a circuit.
    pub fn circuit_info(&self, circ: CircId) -> &CircuitInfo {
        &self.circuits[circ.index()]
    }

    /// Number of registered circuits.
    pub fn circuit_count(&self) -> usize {
        self.circuits.len()
    }

    /// An overlay node.
    pub fn node(&self, id: OverlayId) -> &OverlayNode {
        &self.nodes[id.index()]
    }

    /// The client's forward hop transport of a circuit, if built.
    pub fn client_transport(&self, circ: CircId) -> Option<&HopTransport> {
        let client = *self.circuits[circ.index()].path.first()?;
        let nc = self.nodes[client.index()].circuits.get(&circ)?;
        Some(&nc.fwd.as_ref()?.transport)
    }

    /// The recorded source congestion-window trace of a circuit (requires
    /// [`WorldConfig::trace_client_cwnd`]).
    pub fn source_cwnd_trace(&self, circ: CircId) -> Option<&[(SimTime, u32)]> {
        self.client_transport(circ)?.cwnd_trace()
    }

    /// The recorded per-cell RTT samples at the source (requires
    /// [`WorldConfig::trace_client_cwnd`]).
    pub fn source_rtt_trace(&self, circ: CircId) -> Option<&[(SimTime, u64, SimDuration)]> {
        self.client_transport(circ)?.rtt_trace()
    }

    /// The forward-queue high-water mark at `node` for `circ` — the
    /// backpressure bound tests assert on.
    pub fn fwd_queue_hwm(&self, node: OverlayId, circ: CircId) -> Option<usize> {
        let nc = self.nodes[node.index()].circuits.get(&circ)?;
        Some(nc.fwd.as_ref()?.queue_hwm)
    }

    /// The round-robin scheduler backlog high-water mark of an egress
    /// link — where queueing shows up now that links take one frame at a
    /// time.
    pub fn sched_backlog_hwm(&self, link: netsim::link::LinkId) -> usize {
        self.link_sched[link.index()].high_water_mark()
    }

    /// Collects the measured outcome of every circuit.
    pub fn results(&self) -> Vec<CircuitResult> {
        (0..self.circuits.len())
            .map(|i| self.result_of(CircId(i as u32)))
            .collect()
    }

    /// The measured outcome of one circuit.
    pub fn result_of(&self, circ: CircId) -> CircuitResult {
        let info = &self.circuits[circ.index()];
        let client_node = info.path[0];
        let server_node = *info.path.last().expect("non-empty path");
        let client = self.nodes[client_node.index()]
            .circuits
            .get(&circ)
            .and_then(|nc| nc.client.as_ref());
        let server = self.nodes[server_node.index()]
            .circuits
            .get(&circ)
            .and_then(|nc| nc.server.as_ref());
        CircuitResult {
            circ,
            started_at: info.started_at,
            connected_at: client.and_then(|c| c.connected_at),
            first_data_at: client.and_then(|c| c.first_data_at),
            last_byte_at: server.and_then(|s| s.last_byte_at),
            completed: server.is_some_and(|s| s.ended),
            bytes_delivered: server.map_or(0, |s| s.bytes_received),
            cells_delivered: server.map_or(0, |s| s.cells_received),
            payload_errors: server.map_or(0, |s| s.payload_errors),
        }
    }

    // ------------------------------------------------------------------
    // Internal machinery
    // ------------------------------------------------------------------

    fn alloc_link_circ_id(&mut self) -> CircuitId {
        let id = CircuitId(self.next_link_circ_id);
        self.next_link_circ_id += 1;
        id
    }

    /// Handshake blob: global circuit id (instrumentation channel for the
    /// responder's registry — documented in DESIGN.md §4) plus fresh
    /// random key material.
    fn make_handshake(&mut self, circ: CircId) -> [u8; HANDSHAKE_LEN] {
        let mut hs = [0u8; HANDSHAKE_LEN];
        hs[0..4].copy_from_slice(&circ.0.to_be_bytes());
        self.rng.fill_bytes(&mut hs[4..]);
        hs
    }

    fn protocol_error(stats: &mut WorldStats, what: &str) {
        stats.protocol_errors += 1;
        debug_assert!(false, "protocol error: {what}");
    }

    /// Hands a frame to an overlay egress link: directly if the link is
    /// idle, otherwise into the link's round-robin scheduler (feedback has
    /// strict priority; data cells queue per circuit).
    fn sched_send(
        net: &mut Net<WireFrame>,
        link_sched: &mut [LinkScheduler],
        ctx: &mut Context<'_, TorEvent>,
        link: netsim::link::LinkId,
        frame: WireFrame,
        data_circuit: Option<CircId>,
    ) {
        if net.is_busy(link) {
            let sched = &mut link_sched[link.index()];
            match data_circuit {
                Some(circ) => sched.push_cell(circ, frame),
                None => sched.push_feedback(frame),
            }
        } else {
            debug_assert_eq!(net.queue_len(link), 0, "idle link with queued frames");
            let outcome = net.send(ctx, link, frame);
            debug_assert_eq!(outcome, SendOutcome::Accepted, "idle link refused a frame");
        }
    }

    /// After a transmission completes, starts the next scheduled frame on
    /// the link, if any.
    fn refill_link(
        net: &mut Net<WireFrame>,
        link_sched: &mut [LinkScheduler],
        ctx: &mut Context<'_, TorEvent>,
        link: netsim::link::LinkId,
    ) {
        if !net.is_busy(link) {
            if let Some(frame) = link_sched[link.index()].pop() {
                let outcome = net.send(ctx, link, frame);
                debug_assert_eq!(outcome, SendOutcome::Accepted);
            }
        }
    }

    /// Sends a feedback frame to `cf.neighbor`.
    #[allow(clippy::too_many_arguments)]
    fn send_feedback(
        net: &mut Net<WireFrame>,
        link_sched: &mut [LinkScheduler],
        router: &Router,
        net_node_of: &[NodeId],
        stats: &mut WorldStats,
        ctx: &mut Context<'_, TorEvent>,
        my_net: NodeId,
        cf: PendingConfirm,
    ) {
        let dst = net_node_of[cf.neighbor.index()];
        let frame = WireFrame {
            src: my_net,
            dst,
            payload: FramePayload::Feedback(Feedback {
                circ: cf.circ_id,
                seq: cf.seq,
            }),
            confirm: None,
        };
        Self::sched_send(net, link_sched, ctx, router.next_link(my_net, dst), frame, None);
        stats.feedback_sent += 1;
    }

    /// Drains one hop direction: sends queued cells (and, at a
    /// transferring client, freshly generated DATA/END cells) while the
    /// window allows, paying owed feedback as cells leave the queue.
    #[allow(clippy::too_many_arguments)]
    fn pump_dir(
        net: &mut Net<WireFrame>,
        link_sched: &mut [LinkScheduler],
        router: &Router,
        net_node_of: &[NodeId],
        stats: &mut WorldStats,
        ctx: &mut Context<'_, TorEvent>,
        my_net: NodeId,
        nc: &mut NodeCircuit,
        dir: Direction,
    ) {
        let circ = nc.circ;
        let NodeCircuit {
            fwd, bwd, client, ..
        } = nc;
        let Some(hopdir) = (match dir {
            Direction::Forward => fwd.as_mut(),
            Direction::Backward => bwd.as_mut(),
        }) else {
            return;
        };
        loop {
            if !hopdir.transport.can_send() {
                break;
            }
            let qc = if let Some(qc) = hopdir.queue.pop_front() {
                qc
            } else if dir == Direction::Forward {
                match Self::generate_client_cell(client.as_mut(), circ, ctx.now()) {
                    Some(qc) => qc,
                    None => break,
                }
            } else {
                break;
            };

            let mut cell = qc.cell;
            if let Some(hop) = qc.wrap_for_hop {
                let app = client
                    .as_mut()
                    .expect("wrap_for_hop is only set on client-originated cells");
                match &mut cell.body {
                    CellBody::Relay(rc) => app.route.wrap_for_hop(hop, rc),
                    _ => debug_assert!(false, "wrap_for_hop on a control cell"),
                }
            }
            let seq = hopdir.transport.register_send(ctx.now());
            cell.circ = hopdir.link_circ_id;
            let dst = net_node_of[hopdir.neighbor.index()];
            let frame = WireFrame {
                src: my_net,
                dst,
                payload: FramePayload::Cell {
                    cell,
                    hop_seq: seq,
                },
                // Paid when the cell finishes serializing (TxComplete):
                // that is the instant the cell is "forwarded".
                confirm: qc.confirm,
            };
            Self::sched_send(
                net,
                link_sched,
                ctx,
                router.next_link(my_net, dst),
                frame,
                Some(circ),
            );
            stats.cells_sent += 1;
        }
    }

    /// Produces the next client-originated cell (DATA, then one END), or
    /// `None` if the client has nothing to send.
    fn generate_client_cell(
        client: Option<&mut ClientApp>,
        circ: CircId,
        now: SimTime,
    ) -> Option<QueuedCell> {
        let app = client?;
        if app.stage != ClientStage::Transferring {
            return None;
        }
        let server_hop = app.server_hop();
        if app.sent_cells < app.total_cells {
            let idx = app.sent_cells;
            let len = app.cell_len(idx);
            let payload = fill_pattern(circ, idx, len);
            let rc = RelayCell::data(StreamId(1), payload);
            app.sent_cells += 1;
            if app.first_data_at.is_none() {
                app.first_data_at = Some(now);
            }
            Some(QueuedCell {
                cell: Cell {
                    circ: CircuitId::CONTROL, // restamped at send
                    body: CellBody::Relay(rc),
                },
                confirm: None,
                wrap_for_hop: Some(server_hop),
            })
        } else if !app.end_sent {
            app.end_sent = true;
            app.stage = ClientStage::Finished;
            // ≥ 8 payload bytes so leaky-pipe recognition stays sound (a
            // near-empty payload could spuriously "recognize" early).
            let data = vec![END_REASON_DONE; 8];
            let rc = RelayCell {
                cmd: RelayCommand::End,
                stream: StreamId(1),
                digest: payload_digest(&data),
                data,
            };
            Some(QueuedCell {
                cell: Cell {
                    circ: CircuitId::CONTROL,
                    body: CellBody::Relay(rc),
                },
                confirm: None,
                wrap_for_hop: Some(server_hop),
            })
        } else {
            None
        }
    }

    fn start_circuit(&mut self, ctx: &mut Context<'_, TorEvent>, circ: CircId) {
        let info = &mut self.circuits[circ.index()];
        assert!(info.started_at.is_none(), "circuit started twice");
        info.started_at = Some(ctx.now());
        let path = info.path.clone();
        let file_bytes = info.file_bytes;
        let client_id = path[0];
        let first_hop = path[1];
        let link_id = self.alloc_link_circ_id();
        let hs = self.make_handshake(circ);

        let hop_ctx = HopCtx {
            circuit: circ,
            position: 0,
            direction: Direction::Forward,
        };
        let mut transport = HopTransport::new((self.factory)(&hop_ctx));
        if self.cfg.trace_client_cwnd {
            transport.enable_cwnd_trace(ctx.now());
            transport.enable_rtt_trace();
        }

        let node = &mut self.nodes[client_id.index()];
        debug_assert_eq!(node.role, NodeRole::Client, "circuit must start at a client");
        node.routes
            .insert((first_hop, link_id), (circ, Direction::Backward));
        let mut nc = NodeCircuit::new(circ, 0);
        nc.client = Some(ClientApp::new(path, file_bytes, ctx.now()));
        let mut hopdir = HopDir::new(first_hop, link_id, transport);
        hopdir.enqueue(QueuedCell {
            cell: Cell::create(CircuitId::CONTROL, hs),
            confirm: None,
            wrap_for_hop: None,
        });
        nc.fwd = Some(hopdir);
        node.circuits.insert(circ, nc);

        let my_net = node.net_node;
        let nc = self.nodes[client_id.index()]
            .circuits
            .get_mut(&circ)
            .expect("just inserted");
        Self::pump_dir(
            &mut self.net,
            &mut self.link_sched,
            &self.router,
            &self.net_node_of,
            &mut self.stats,
            ctx,
            my_net,
            nc,
            Direction::Forward,
        );
    }

    fn deliver(&mut self, ctx: &mut Context<'_, TorEvent>, frame: WireFrame) {
        let to = *self
            .overlay_by_net
            .get(&frame.dst)
            .expect("frame delivered to a node with no overlay participant");
        let from = *self
            .overlay_by_net
            .get(&frame.src)
            .expect("frame from a node with no overlay participant");
        match frame.payload {
            FramePayload::Feedback(fb) => self.on_feedback(ctx, to, from, fb),
            FramePayload::Cell { cell, hop_seq } => self.on_cell(ctx, to, from, cell, hop_seq),
        }
    }

    fn on_feedback(
        &mut self,
        ctx: &mut Context<'_, TorEvent>,
        to: OverlayId,
        from: OverlayId,
        fb: Feedback,
    ) {
        let node = &mut self.nodes[to.index()];
        let Some(&(circ, _)) = node.routes.get(&(from, fb.circ)) else {
            Self::protocol_error(&mut self.stats, "feedback on unknown route");
            return;
        };
        let my_net = node.net_node;
        let Some(nc) = node.circuits.get_mut(&circ) else {
            Self::protocol_error(&mut self.stats, "feedback for unknown circuit");
            return;
        };
        let Some(dir) = nc.direction_toward(from) else {
            Self::protocol_error(&mut self.stats, "feedback from non-neighbour");
            return;
        };
        {
            let hopdir = nc.hopdir_toward_mut(from).expect("direction just resolved");
            if hopdir.transport.on_feedback(fb.seq, ctx.now()).is_err() {
                Self::protocol_error(&mut self.stats, "feedback with unknown sequence");
                return;
            }
        }
        Self::pump_dir(
            &mut self.net,
            &mut self.link_sched,
            &self.router,
            &self.net_node_of,
            &mut self.stats,
            ctx,
            my_net,
            nc,
            dir,
        );
    }

    fn on_cell(
        &mut self,
        ctx: &mut Context<'_, TorEvent>,
        to: OverlayId,
        from: OverlayId,
        cell: Cell,
        hop_seq: u64,
    ) {
        match cell.body {
            CellBody::Create { handshake } => {
                self.handle_create(ctx, to, from, cell.circ, handshake, hop_seq)
            }
            CellBody::Created { handshake } => {
                self.handle_created(ctx, to, from, cell.circ, handshake, hop_seq)
            }
            CellBody::Destroy { reason } => {
                self.handle_destroy(ctx, to, from, cell.circ, reason, hop_seq)
            }
            CellBody::Padding => {
                // Padding is consumed silently but still confirmed so the
                // sender's window does not leak.
                let my_net = self.net_node_of[to.index()];
                Self::send_feedback(
                    &mut self.net,
                    &mut self.link_sched,
                    &self.router,
                    &self.net_node_of,
                    &mut self.stats,
                    ctx,
                    my_net,
                    PendingConfirm {
                        neighbor: from,
                        circ_id: cell.circ,
                        seq: hop_seq,
                    },
                );
            }
            CellBody::Relay(rc) => self.handle_relay(ctx, to, from, cell.circ, rc, hop_seq),
        }
    }

    /// CREATE: become part of the circuit; answer CREATED.
    fn handle_create(
        &mut self,
        ctx: &mut Context<'_, TorEvent>,
        to: OverlayId,
        from: OverlayId,
        link_id: CircuitId,
        handshake: [u8; HANDSHAKE_LEN],
        hop_seq: u64,
    ) {
        let global = CircId(u32::from_be_bytes(
            handshake[0..4].try_into().expect("4 bytes"),
        ));
        let Some(info) = self.circuits.get(global.index()) else {
            Self::protocol_error(&mut self.stats, "CREATE for unregistered circuit");
            return;
        };
        let Some(position) = info.path.iter().position(|&n| n == to) else {
            Self::protocol_error(&mut self.stats, "CREATE at node not on the path");
            return;
        };
        let is_server = position == info.path.len() - 1;

        let hop_ctx = HopCtx {
            circuit: global,
            position,
            direction: Direction::Backward,
        };
        let transport = HopTransport::new((self.factory)(&hop_ctx));

        let node = &mut self.nodes[to.index()];
        let my_net = node.net_node;
        node.routes
            .insert((from, link_id), (global, Direction::Forward));
        let mut nc = NodeCircuit::new(global, position);
        nc.pred = Some(from);
        nc.pred_circ_id = Some(link_id);
        nc.crypt = Some(RelayCrypt::new(LayerKey::from_handshake(&handshake)));
        if is_server {
            nc.server = Some(ServerApp::default());
        }
        let mut bwd = HopDir::new(from, link_id, transport);
        bwd.enqueue(QueuedCell {
            cell: Cell::created(CircuitId::CONTROL, handshake),
            confirm: None,
            wrap_for_hop: None,
        });
        nc.bwd = Some(bwd);
        node.circuits.insert(global, nc);

        // Confirm the consumed CREATE, then answer.
        Self::send_feedback(
            &mut self.net,
            &mut self.link_sched,
            &self.router,
            &self.net_node_of,
            &mut self.stats,
            ctx,
            my_net,
            PendingConfirm {
                neighbor: from,
                circ_id: link_id,
                seq: hop_seq,
            },
        );
        let nc = self.nodes[to.index()]
            .circuits
            .get_mut(&global)
            .expect("just inserted");
        Self::pump_dir(
            &mut self.net,
            &mut self.link_sched,
            &self.router,
            &self.net_node_of,
            &mut self.stats,
            ctx,
            my_net,
            nc,
            Direction::Backward,
        );
    }

    /// CREATED: the hop we asked for exists. At the client this advances
    /// the build; at a relay it answers a pending EXTEND with EXTENDED.
    fn handle_created(
        &mut self,
        ctx: &mut Context<'_, TorEvent>,
        to: OverlayId,
        from: OverlayId,
        link_id: CircuitId,
        handshake: [u8; HANDSHAKE_LEN],
        hop_seq: u64,
    ) {
        let node = &mut self.nodes[to.index()];
        let my_net = node.net_node;
        let Some(&(global, _)) = node.routes.get(&(from, link_id)) else {
            Self::protocol_error(&mut self.stats, "CREATED on unknown route");
            return;
        };
        Self::send_feedback(
            &mut self.net,
            &mut self.link_sched,
            &self.router,
            &self.net_node_of,
            &mut self.stats,
            ctx,
            my_net,
            PendingConfirm {
                neighbor: from,
                circ_id: link_id,
                seq: hop_seq,
            },
        );
        let node = &mut self.nodes[to.index()];
        let Some(nc) = node.circuits.get_mut(&global) else {
            Self::protocol_error(&mut self.stats, "CREATED for unknown circuit");
            return;
        };
        if nc.client.is_some() {
            self.client_advance_build(ctx, to, global, handshake);
        } else {
            // A relay completed an EXTEND: report EXTENDED to the client.
            let Some(echo) = nc.pending_extend.take() else {
                Self::protocol_error(&mut self.stats, "CREATED without pending EXTEND");
                return;
            };
            debug_assert_eq!(echo, handshake, "CREATED must echo the extend handshake");
            let mut rc = RelayCell {
                cmd: RelayCommand::Extended,
                stream: StreamId::CIRCUIT,
                digest: payload_digest(&echo),
                data: echo.to_vec(),
            };
            nc.crypt
                .as_mut()
                .expect("relay has crypt state")
                .add_backward(&mut rc);
            let Some(bwd) = nc.bwd.as_mut() else {
                Self::protocol_error(&mut self.stats, "relay without backward hop");
                return;
            };
            bwd.enqueue(QueuedCell {
                cell: Cell {
                    circ: CircuitId::CONTROL,
                    body: CellBody::Relay(rc),
                },
                confirm: None,
                wrap_for_hop: None,
            });
            Self::pump_dir(
                &mut self.net,
                &mut self.link_sched,
                &self.router,
                &self.net_node_of,
                &mut self.stats,
                ctx,
                my_net,
                nc,
                Direction::Backward,
            );
        }
    }

    /// The client gained a key for one more hop: extend further, or open
    /// the stream if the circuit is complete.
    fn client_advance_build(
        &mut self,
        ctx: &mut Context<'_, TorEvent>,
        client: OverlayId,
        circ: CircId,
        handshake: [u8; HANDSHAKE_LEN],
    ) {
        // Pre-generate randomness before borrowing node state.
        let next_handshake = self.make_handshake(circ);
        let node = &mut self.nodes[client.index()];
        let my_net = node.net_node;
        let nc = node.circuits.get_mut(&circ).expect("client circuit exists");
        let app = nc.client.as_mut().expect("client app exists");
        app.route.push_layer(LayerKey::from_handshake(&handshake));
        let built = app.route.len();
        let needed = app.path.len() - 1;
        let qc = if built < needed {
            let target = app.path[built + 1];
            app.stage = ClientStage::Building { next: built + 1 };
            let mut data = Vec::with_capacity(4 + HANDSHAKE_LEN);
            data.extend_from_slice(&target.0.to_be_bytes());
            data.extend_from_slice(&next_handshake);
            let rc = RelayCell {
                cmd: RelayCommand::Extend,
                stream: StreamId::CIRCUIT,
                digest: payload_digest(&data),
                data,
            };
            QueuedCell {
                cell: Cell {
                    circ: CircuitId::CONTROL,
                    body: CellBody::Relay(rc),
                },
                confirm: None,
                wrap_for_hop: Some(built - 1),
            }
        } else {
            app.stage = ClientStage::Opening;
            let data = b"server:443".to_vec();
            let rc = RelayCell {
                cmd: RelayCommand::Begin,
                stream: StreamId(1),
                digest: payload_digest(&data),
                data,
            };
            QueuedCell {
                cell: Cell {
                    circ: CircuitId::CONTROL,
                    body: CellBody::Relay(rc),
                },
                confirm: None,
                wrap_for_hop: Some(needed - 1),
            }
        };
        nc.fwd.as_mut().expect("client forward hop").enqueue(qc);
        Self::pump_dir(
            &mut self.net,
            &mut self.link_sched,
            &self.router,
            &self.net_node_of,
            &mut self.stats,
            ctx,
            my_net,
            nc,
            Direction::Forward,
        );
    }

    /// A relay cell arrived from a neighbour.
    fn handle_relay(
        &mut self,
        ctx: &mut Context<'_, TorEvent>,
        to: OverlayId,
        from: OverlayId,
        link_id: CircuitId,
        mut rc: RelayCell,
        hop_seq: u64,
    ) {
        let node = &mut self.nodes[to.index()];
        let my_net = node.net_node;
        let Some(&(global, flow)) = node.routes.get(&(from, link_id)) else {
            Self::protocol_error(&mut self.stats, "relay cell on unknown route");
            return;
        };
        let Some(nc) = node.circuits.get_mut(&global) else {
            Self::protocol_error(&mut self.stats, "relay cell for unknown circuit");
            return;
        };
        let confirm = PendingConfirm {
            neighbor: from,
            circ_id: link_id,
            seq: hop_seq,
        };

        if nc.closed {
            // Torn-down circuit: confirm (so the sender's window drains)
            // and drop.
            self.stats.cells_dropped_closed += 1;
            Self::send_feedback(
                &mut self.net,
                &mut self.link_sched,
                &self.router,
                &self.net_node_of,
                &mut self.stats,
                ctx,
                my_net,
                confirm,
            );
            return;
        }

        match flow {
            Direction::Forward => {
                if nc.client.is_some() {
                    Self::protocol_error(&mut self.stats, "forward relay cell at client");
                    return;
                }
                let recognized = nc
                    .crypt
                    .as_mut()
                    .expect("non-client has crypt state")
                    .strip_forward(&mut rc);
                if recognized {
                    Self::send_feedback(
                        &mut self.net,
                        &mut self.link_sched,
                        &self.router,
                        &self.net_node_of,
                        &mut self.stats,
                        ctx,
                        my_net,
                        confirm,
                    );
                    let nc = self.nodes[to.index()]
                        .circuits
                        .get_mut(&global)
                        .expect("still present");
                    if nc.server.is_some() {
                        self.server_consume(ctx, to, global, rc);
                    } else {
                        self.relay_consume(ctx, to, global, rc);
                    }
                } else {
                    if nc.server.is_some() {
                        Self::protocol_error(&mut self.stats, "unrecognized relay cell at server");
                        return;
                    }
                    let Some(fwd) = nc.fwd.as_mut() else {
                        Self::protocol_error(&mut self.stats, "forwarding past the built circuit");
                        return;
                    };
                    fwd.enqueue(QueuedCell {
                        cell: Cell {
                            circ: CircuitId::CONTROL,
                            body: CellBody::Relay(rc),
                        },
                        confirm: Some(confirm),
                        wrap_for_hop: None,
                    });
                    Self::pump_dir(
                        &mut self.net,
                        &mut self.link_sched,
                        &self.router,
                        &self.net_node_of,
                        &mut self.stats,
                        ctx,
                        my_net,
                        nc,
                        Direction::Forward,
                    );
                }
            }
            Direction::Backward => {
                if nc.client.is_some() {
                    Self::send_feedback(
                        &mut self.net,
                        &mut self.link_sched,
                        &self.router,
                        &self.net_node_of,
                        &mut self.stats,
                        ctx,
                        my_net,
                        confirm,
                    );
                    let node = &mut self.nodes[to.index()];
                    let nc = node.circuits.get_mut(&global).expect("still present");
                    let app = nc.client.as_mut().expect("client app");
                    match app.route.unwrap_inbound(&mut rc) {
                        Some(origin) => {
                            self.client_consume_backward(ctx, to, global, origin, rc)
                        }
                        None => {
                            Self::protocol_error(
                                &mut self.stats,
                                "backward cell not recognized by any layer",
                            );
                        }
                    }
                } else {
                    nc.crypt
                        .as_mut()
                        .expect("relay has crypt state")
                        .add_backward(&mut rc);
                    let Some(bwd) = nc.bwd.as_mut() else {
                        Self::protocol_error(&mut self.stats, "backward cell with no client side");
                        return;
                    };
                    bwd.enqueue(QueuedCell {
                        cell: Cell {
                            circ: CircuitId::CONTROL,
                            body: CellBody::Relay(rc),
                        },
                        confirm: Some(confirm),
                        wrap_for_hop: None,
                    });
                    Self::pump_dir(
                        &mut self.net,
                        &mut self.link_sched,
                        &self.router,
                        &self.net_node_of,
                        &mut self.stats,
                        ctx,
                        my_net,
                        nc,
                        Direction::Backward,
                    );
                }
            }
        }
    }

    /// A relay recognized a forward cell: only EXTEND is valid here.
    fn relay_consume(
        &mut self,
        ctx: &mut Context<'_, TorEvent>,
        relay: OverlayId,
        circ: CircId,
        rc: RelayCell,
    ) {
        if rc.cmd != RelayCommand::Extend {
            Self::protocol_error(&mut self.stats, "relay consumed a non-EXTEND cell");
            return;
        }
        if rc.data.len() != 4 + HANDSHAKE_LEN {
            Self::protocol_error(&mut self.stats, "malformed EXTEND payload");
            return;
        }
        let target = OverlayId(u32::from_be_bytes(rc.data[0..4].try_into().expect("4 bytes")));
        if target.index() >= self.nodes.len() {
            Self::protocol_error(&mut self.stats, "EXTEND to unknown node");
            return;
        }
        let mut hs = [0u8; HANDSHAKE_LEN];
        hs.copy_from_slice(&rc.data[4..]);
        let new_id = self.alloc_link_circ_id();

        let node = &mut self.nodes[relay.index()];
        let my_net = node.net_node;
        let position = node
            .circuits
            .get(&circ)
            .expect("circuit exists at relay")
            .position;
        node.routes
            .insert((target, new_id), (circ, Direction::Backward));
        let hop_ctx = HopCtx {
            circuit: circ,
            position,
            direction: Direction::Forward,
        };
        let transport = HopTransport::new((self.factory)(&hop_ctx));
        let nc = node.circuits.get_mut(&circ).expect("circuit exists");
        nc.pending_extend = Some(hs);
        let mut fwd = HopDir::new(target, new_id, transport);
        fwd.enqueue(QueuedCell {
            cell: Cell::create(CircuitId::CONTROL, hs),
            confirm: None,
            wrap_for_hop: None,
        });
        nc.fwd = Some(fwd);
        Self::pump_dir(
            &mut self.net,
            &mut self.link_sched,
            &self.router,
            &self.net_node_of,
            &mut self.stats,
            ctx,
            my_net,
            nc,
            Direction::Forward,
        );
    }

    /// The server recognized a forward cell.
    fn server_consume(
        &mut self,
        ctx: &mut Context<'_, TorEvent>,
        server: OverlayId,
        circ: CircId,
        rc: RelayCell,
    ) {
        let verify = self.cfg.verify_payload;
        let node = &mut self.nodes[server.index()];
        let my_net = node.net_node;
        let nc = node.circuits.get_mut(&circ).expect("server circuit exists");
        let app = nc.server.as_mut().expect("server app exists");
        match rc.cmd {
            RelayCommand::Begin => {
                app.stream_open = true;
                let data = vec![0xC0u8; 8];
                let mut reply = RelayCell {
                    cmd: RelayCommand::Connected,
                    stream: rc.stream,
                    digest: payload_digest(&data),
                    data,
                };
                nc.crypt
                    .as_mut()
                    .expect("server has crypt state")
                    .add_backward(&mut reply);
                nc.bwd
                    .as_mut()
                    .expect("server backward hop")
                    .enqueue(QueuedCell {
                        cell: Cell {
                            circ: CircuitId::CONTROL,
                            body: CellBody::Relay(reply),
                        },
                        confirm: None,
                        wrap_for_hop: None,
                    });
                Self::pump_dir(
                    &mut self.net,
                    &mut self.link_sched,
                    &self.router,
                    &self.net_node_of,
                    &mut self.stats,
                    ctx,
                    my_net,
                    nc,
                    Direction::Backward,
                );
            }
            RelayCommand::Data => {
                if !app.stream_open {
                    Self::protocol_error(&mut self.stats, "DATA before BEGIN");
                    return;
                }
                if verify {
                    let expected = fill_pattern(circ, app.cells_received, rc.data.len());
                    if rc.data != expected {
                        app.payload_errors += 1;
                        debug_assert!(false, "payload verification failed");
                    }
                }
                app.cells_received += 1;
                app.bytes_received += rc.data.len() as u64;
                if app.first_byte_at.is_none() {
                    app.first_byte_at = Some(ctx.now());
                }
                app.last_byte_at = Some(ctx.now());
            }
            RelayCommand::End => {
                app.ended = true;
            }
            _ => {
                Self::protocol_error(&mut self.stats, "unexpected relay command at server");
            }
        }
    }

    /// The client recognized a backward cell originated by hop `origin`.
    fn client_consume_backward(
        &mut self,
        ctx: &mut Context<'_, TorEvent>,
        client: OverlayId,
        circ: CircId,
        origin: usize,
        rc: RelayCell,
    ) {
        match rc.cmd {
            RelayCommand::Extended => {
                if rc.data.len() != HANDSHAKE_LEN {
                    Self::protocol_error(&mut self.stats, "malformed EXTENDED payload");
                    return;
                }
                let node = &self.nodes[client.index()];
                let nc = node.circuits.get(&circ).expect("client circuit");
                let app = nc.client.as_ref().expect("client app");
                debug_assert_eq!(
                    origin,
                    app.route.len() - 1,
                    "EXTENDED must originate from the current last hop"
                );
                let mut hs = [0u8; HANDSHAKE_LEN];
                hs.copy_from_slice(&rc.data);
                self.client_advance_build(ctx, client, circ, hs);
            }
            RelayCommand::Connected => {
                let node = &mut self.nodes[client.index()];
                let my_net = node.net_node;
                let nc = node.circuits.get_mut(&circ).expect("client circuit");
                let app = nc.client.as_mut().expect("client app");
                if app.stage != ClientStage::Opening {
                    Self::protocol_error(&mut self.stats, "CONNECTED in wrong stage");
                    return;
                }
                app.stage = ClientStage::Transferring;
                app.connected_at = Some(ctx.now());
                Self::pump_dir(
                    &mut self.net,
                    &mut self.link_sched,
                    &self.router,
                    &self.net_node_of,
                    &mut self.stats,
                    ctx,
                    my_net,
                    nc,
                    Direction::Forward,
                );
            }
            RelayCommand::End => {
                // Server-initiated close; nothing to do for bulk transfers.
            }
            _ => {
                Self::protocol_error(&mut self.stats, "unexpected backward relay command");
            }
        }
    }

    /// DESTROY: mark the circuit closed and propagate.
    fn handle_destroy(
        &mut self,
        ctx: &mut Context<'_, TorEvent>,
        to: OverlayId,
        from: OverlayId,
        link_id: CircuitId,
        reason: u8,
        hop_seq: u64,
    ) {
        let node = &mut self.nodes[to.index()];
        let my_net = node.net_node;
        let Some(&(global, _)) = node.routes.get(&(from, link_id)) else {
            Self::protocol_error(&mut self.stats, "DESTROY on unknown route");
            return;
        };
        Self::send_feedback(
            &mut self.net,
            &mut self.link_sched,
            &self.router,
            &self.net_node_of,
            &mut self.stats,
            ctx,
            my_net,
            PendingConfirm {
                neighbor: from,
                circ_id: link_id,
                seq: hop_seq,
            },
        );
        let node = &mut self.nodes[to.index()];
        let Some(nc) = node.circuits.get_mut(&global) else {
            return; // already gone
        };
        if nc.closed {
            return;
        }
        nc.closed = true;
        // Propagate away from the sender.
        let propagate_dir = match nc.direction_toward(from) {
            // The hop *toward* the sender is where it came from; continue
            // in the other direction.
            Some(Direction::Forward) => Direction::Backward,
            Some(Direction::Backward) => Direction::Forward,
            None => return,
        };
        let hopdir = match propagate_dir {
            Direction::Forward => nc.fwd.as_mut(),
            Direction::Backward => nc.bwd.as_mut(),
        };
        if let Some(hd) = hopdir {
            hd.enqueue(QueuedCell {
                cell: Cell::destroy(CircuitId::CONTROL, reason),
                confirm: None,
                wrap_for_hop: None,
            });
            Self::pump_dir(
                &mut self.net,
                &mut self.link_sched,
                &self.router,
                &self.net_node_of,
                &mut self.stats,
                ctx,
                my_net,
                nc,
                propagate_dir,
            );
        }
    }

    /// Client-initiated teardown (from a [`TorEvent::Teardown`]).
    fn teardown(&mut self, ctx: &mut Context<'_, TorEvent>, circ: CircId) {
        let client_id = self.circuits[circ.index()].path[0];
        let node = &mut self.nodes[client_id.index()];
        let my_net = node.net_node;
        let Some(nc) = node.circuits.get_mut(&circ) else {
            return;
        };
        if nc.closed {
            return;
        }
        nc.closed = true;
        if let Some(fwd) = nc.fwd.as_mut() {
            fwd.enqueue(QueuedCell {
                cell: Cell::destroy(CircuitId::CONTROL, DESTROY_REASON_FINISHED),
                confirm: None,
                wrap_for_hop: None,
            });
            Self::pump_dir(
                &mut self.net,
                &mut self.link_sched,
                &self.router,
                &self.net_node_of,
                &mut self.stats,
                ctx,
                my_net,
                nc,
                Direction::Forward,
            );
        }
    }
}

impl World for TorNetwork {
    type Event = TorEvent;

    fn handle(&mut self, ctx: &mut Context<'_, TorEvent>, event: TorEvent) {
        match event {
            TorEvent::Net(NetEvent::TxComplete { link }) => {
                // A cell that just finished serializing is now physically
                // forwarded: pay the feedback owed to the upstream
                // neighbour. `take()` ensures intermediate switches (the
                // star hub) do not pay it a second time.
                let confirm = self
                    .net
                    .transmitting_mut(link)
                    .and_then(|f| f.confirm.take());
                self.net.on_tx_complete(ctx, link);
                // Serve the next scheduled frame before anything else so
                // the link never idles while work is waiting.
                Self::refill_link(&mut self.net, &mut self.link_sched, ctx, link);
                if let Some(cf) = confirm {
                    let my_net = self.net.link_src(link);
                    Self::send_feedback(
                        &mut self.net,
                        &mut self.link_sched,
                        &self.router,
                        &self.net_node_of,
                        &mut self.stats,
                        ctx,
                        my_net,
                        cf,
                    );
                }
            }
            TorEvent::Net(NetEvent::Deliver { link }) => {
                let frame = self.net.take_delivered(link);
                let here = self.net.link_dst(link);
                if here != frame.dst {
                    // An intermediate switch (the star hub): forward.
                    let next = self.router.next_link(here, frame.dst);
                    let outcome = self.net.send(ctx, next, frame);
                    debug_assert_eq!(outcome, SendOutcome::Accepted, "switch dropped a frame");
                } else {
                    self.deliver(ctx, frame);
                }
            }
            TorEvent::StartCircuit(circ) => self.start_circuit(ctx, circ),
            TorEvent::Teardown(circ) => self.teardown(ctx, circ),
            TorEvent::SetLinkRate { link, rate } => self.net.set_link_rate(link, rate),
        }
    }
}
