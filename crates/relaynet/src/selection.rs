//! Pluggable path selection: the policy seam between the relay
//! directory and circuit placement.
//!
//! Which relays a circuit crosses determines which relays become
//! bottlenecks — and therefore how much a slow start helps — so
//! selection is an experimental axis, not a hard-wired rule. The seam
//! mirrors [`crate::node::CcFactory`]: scenarios carry a
//! [`SelectionPolicy`] (a shared [`PathSelection`] trait object), the
//! network calls it for every placement, and experiments swap policies
//! without touching protocol code.
//!
//! A policy sees a [`DirectoryView`]: the SoA relay store
//! ([`crate::directory::Directory`] — bandwidth, access delay, liveness
//! columns) **plus live load telemetry** — the number of circuits
//! currently routed through each relay, maintained by
//! [`crate::network::TorNetwork`] as circuits are placed and torn down.
//! Initial placement therefore already feeds back (each circuit sees its
//! predecessors), and churn rebuilds re-select under the load left by
//! the surviving circuits. Dark (non-live) relays weigh zero and are
//! never selected.
//!
//! # Determinism contract
//!
//! A policy may draw randomness **only** from the [`SimRng`] passed to
//! [`PathSelection::select`] (the network's dedicated placement stream);
//! it must be a pure function of `(view, rng state, path_len)`. It must
//! return exactly `path_len` distinct in-range relay indices — the
//! network validates this and panics on a violating policy. See
//! DESIGN.md §9.
//!
//! # Weights are integer-valued
//!
//! [`PathSelection::relay_weight`] must return integer-valued `f64`
//! weights (quantize with `round()`), keeping every draw exact and
//! therefore identical between the linear and Fenwick samplers and
//! between incremental updates and full rebuilds — the contract
//! [`crate::sampler`] documents and asserts.
//!
//! # The selection engine
//!
//! [`PathSelection::select`]'s default implementation rebuilds the
//! weight vector per call — fine at 30 relays, the hot path at 7k.
//! [`SelectionEngine`] is the consensus-scale path the network actually
//! drives: it owns a [`Sampler`] fed *incrementally* by load-ledger and
//! liveness changes (O(log n) per update with the Fenwick tree) and
//! reusable scratch buffers, so a steady-state selection allocates
//! nothing. Pick equivalence with the default implementation is exact
//! (see [`crate::sampler`]) and differentially tested.
//!
//! # Shipped policies
//!
//! | policy | weight of relay `i` | models |
//! |---|---|---|
//! | [`Uniform`] | 1 | unweighted sampling |
//! | [`BandwidthWeighted`] | `bw_i` | Tor's consensus-bandwidth weighting |
//! | [`LatencyAware`] | `round(1 / delay_i²)` | ShorTor-style latency-driven choice |
//! | [`CongestionAware`] | `round(bw_i / (1 + load_i))` | Imani et al.-style congestion avoidance |

use std::sync::Arc;

use simcore::rng::SimRng;
use simcore::time::SimDuration;

use crate::directory::{Directory, RelaySpec};
use crate::sampler::{Sampler, SamplerKind};

/// A selection policy as scenarios carry it: shared, cheaply cloneable,
/// usable both at build time and by the network's churn rebuilds.
pub type SelectionPolicy = Arc<dyn PathSelection>;

/// Every shipped policy, in canonical order — the single source of
/// truth for harnesses ("run each policy") so adding a policy extends
/// every sweep, bench, and differential test at once.
pub fn all_policies() -> [SelectionPolicy; 4] {
    [
        Arc::new(Uniform),
        Arc::new(BandwidthWeighted),
        Arc::new(LatencyAware),
        Arc::new(CongestionAware),
    ]
}

/// What a policy sees when asked to place a circuit: the relay store's
/// columns plus a snapshot of live load. The snapshot is taken at call
/// time — a policy must not assume it stays valid across calls (churn
/// changes it between placements).
#[derive(Clone, Copy, Debug)]
pub struct DirectoryView<'a> {
    directory: &'a Directory,
    load: &'a [u32],
    /// Client-side exclusion column (relays blamed for circuit
    /// timeouts); `None` means nothing is excluded. Orthogonal to the
    /// store's liveness column, which consensus epochs own.
    excluded: Option<&'a [bool]>,
}

impl<'a> DirectoryView<'a> {
    /// Pairs the relay store with its live circuit counts.
    ///
    /// # Panics
    ///
    /// Panics if `load` does not hold one counter per relay.
    pub fn new(directory: &'a Directory, load: &'a [u32]) -> DirectoryView<'a> {
        assert_eq!(
            directory.len(),
            load.len(),
            "one load counter per relay spec"
        );
        DirectoryView {
            directory,
            load,
            excluded: None,
        }
    }

    /// [`DirectoryView::new`] plus a blame-driven exclusion column:
    /// excluded relays weigh zero exactly like dark ones. An all-`false`
    /// column is behaviourally identical to [`DirectoryView::new`], so
    /// fault-free runs stay bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `load` or `excluded` do not hold one entry per relay.
    pub fn with_exclusions(
        directory: &'a Directory,
        load: &'a [u32],
        excluded: &'a [bool],
    ) -> DirectoryView<'a> {
        assert_eq!(
            directory.len(),
            load.len(),
            "one load counter per relay spec"
        );
        assert_eq!(
            directory.len(),
            excluded.len(),
            "one exclusion flag per relay spec"
        );
        DirectoryView {
            directory,
            load,
            excluded: Some(excluded),
        }
    }

    /// Number of relays in the provisioned universe.
    #[inline]
    pub fn len(&self) -> usize {
        self.directory.len()
    }

    /// Whether the view holds no relays. Always `false` for a
    /// constructed view (directories reject empty relay sets), kept
    /// for the standard `len`/`is_empty` pairing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.directory.is_empty()
    }

    /// One relay's access-link characteristics (materialized from the
    /// SoA columns).
    #[inline]
    pub fn spec(&self, relay: usize) -> RelaySpec {
        self.directory.spec(relay)
    }

    /// One relay's access-link rate, bit/s (column read).
    #[inline]
    pub fn bandwidth_bps(&self, relay: usize) -> u64 {
        self.directory.bandwidths_bps()[relay]
    }

    /// One relay's one-way access delay (column read).
    #[inline]
    pub fn delay(&self, relay: usize) -> SimDuration {
        self.directory.delays()[relay]
    }

    /// Whether `relay` is in the live set (dark relays weigh zero).
    #[inline]
    pub fn is_live(&self, relay: usize) -> bool {
        self.directory.is_live(relay)
    }

    /// Number of live relays (O(1) — maintained by the store).
    #[inline]
    pub fn live_count(&self) -> usize {
        self.directory.live_count()
    }

    /// Whether every provisioned relay is live (the common no-churn
    /// case, enabling the uniform fast path).
    #[inline]
    pub fn all_live(&self) -> bool {
        self.directory.live_count() == self.directory.len()
    }

    /// Whether `relay` carries a blame-driven exclusion.
    #[inline]
    pub fn is_excluded(&self, relay: usize) -> bool {
        self.excluded.is_some_and(|e| e[relay])
    }

    /// Whether `relay` may be selected at all: live and not excluded.
    /// This — not [`DirectoryView::is_live`] — is the gate every weight
    /// computation uses.
    #[inline]
    pub fn is_selectable(&self, relay: usize) -> bool {
        self.directory.is_live(relay) && !self.is_excluded(relay)
    }

    /// Whether every provisioned relay is selectable (live and
    /// unexcluded) — the gate for the uniform Fisher–Yates fast path.
    /// O(1) without an exclusion column; scans it otherwise (selection
    /// is per-placement, not per-cell, so the scan is cold).
    #[inline]
    pub fn all_selectable(&self) -> bool {
        self.all_live() && self.excluded.is_none_or(|e| !e.iter().any(|&x| x))
    }

    /// Circuits currently routed through each relay, indexed by relay id.
    #[inline]
    pub fn loads(&self) -> &'a [u32] {
        self.load
    }

    /// Circuits currently routed through one relay.
    #[inline]
    pub fn load(&self, relay: usize) -> u32 {
        self.load[relay]
    }
}

/// The path-selection seam: maps a directory view to `path_len`
/// distinct relay indices (in path order, client side first).
///
/// A policy is defined by its **per-relay weight**
/// ([`PathSelection::relay_weight`], integer-valued — see the module
/// docs); [`PathSelection::select`]'s default implementation performs
/// the weighted draw, and [`SelectionEngine`] performs the same draw
/// incrementally at consensus scale. A policy whose selection logic is
/// *not* expressible as independent per-relay weights may override
/// `select` and return `false` from [`PathSelection::incremental`] so
/// the engine falls back to calling it.
pub trait PathSelection: std::fmt::Debug + Send + Sync {
    /// Stable identifier used in experiment labels and bench keys.
    fn name(&self) -> &'static str;

    /// The selection weight of one **live** relay (the caller zeroes
    /// dark relays). Must be finite, non-negative, and integer-valued.
    fn relay_weight(&self, view: &DirectoryView<'_>, relay: usize) -> f64;

    /// Whether the weight depends on the live load view. Load-ledger
    /// changes only propagate into a [`SelectionEngine`]'s sampler for
    /// policies that return `true` — the others skip the per-relay
    /// update entirely.
    fn load_sensitive(&self) -> bool {
        false
    }

    /// Whether all live relays weigh the same, enabling the
    /// allocation-free Fisher–Yates fast path (which reproduces
    /// [`SimRng::sample_distinct`] pick for pick).
    fn draws_uniform(&self) -> bool {
        false
    }

    /// Whether [`PathSelection::select`]'s behaviour is fully described
    /// by [`PathSelection::relay_weight`] (true for every shipped
    /// policy). Policies overriding `select` with bespoke logic must
    /// return `false`, making the engine call `select` instead of its
    /// incremental sampler.
    fn incremental(&self) -> bool {
        true
    }

    /// Selects `path_len` **distinct** relay indices. The default
    /// implementation draws by [`PathSelection::relay_weight`] (dark
    /// relays weigh zero), rebuilding the weight vector per call — the
    /// reference behaviour [`SelectionEngine`] reproduces exactly.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `path_len` relays are selectable (live with
    /// positive weight).
    fn select(&self, view: &DirectoryView<'_>, rng: &mut SimRng, path_len: usize) -> Vec<usize> {
        if self.draws_uniform() && view.all_selectable() {
            assert_path_fits(view, path_len);
            return rng.sample_distinct(view.len(), path_len);
        }
        // One fused pass: weights and the selectable count together
        // (historically `assert_path_fits` and `weighted_distinct` each
        // re-scanned the directory).
        let mut selectable = 0usize;
        let weights: Vec<f64> = (0..view.len())
            .map(|i| {
                let w = if view.is_selectable(i) {
                    self.relay_weight(view, i)
                } else {
                    0.0
                };
                if w > 0.0 {
                    selectable += 1;
                }
                w
            })
            .collect();
        assert_selectable(selectable, view.len(), path_len);
        weighted_distinct_precounted(weights, rng, path_len)
    }
}

fn assert_path_fits(view: &DirectoryView<'_>, path_len: usize) {
    assert!(
        path_len <= view.len(),
        "cannot pick {path_len} distinct relays from {}",
        view.len()
    );
}

fn assert_selectable(selectable: usize, relays: usize, path_len: usize) {
    assert!(
        selectable >= path_len,
        "only {selectable} of {relays} relays are selectable (positive weight), \
         but the path needs {path_len} distinct relays"
    );
}

/// Repeated weighted draws without replacement — the legacy linear-scan
/// entry point, kept as the differential oracle for the sampler seam
/// (see [`crate::sampler`]). Validates and counts, then runs the scan.
///
/// Zero-weight entries are legal and simply unselectable: a directory
/// may carry a dead relay (zero consensus bandwidth, a dark epoch
/// departure) without making placement panic. Only when fewer than
/// `path_len` entries carry positive weight is the draw impossible, and
/// *that* panics with a message naming the shortfall.
///
/// # Panics
///
/// Panics if fewer than `path_len` weights are positive, or if any
/// weight is negative or non-finite (a policy bug, not a directory
/// condition).
#[cfg_attr(not(test), allow(dead_code))] // oracle: exercised by the differential tests
fn weighted_distinct(weights: Vec<f64>, rng: &mut SimRng, path_len: usize) -> Vec<usize> {
    assert!(
        weights.iter().all(|&w| w >= 0.0 && w.is_finite()),
        "selection weights must be finite and non-negative"
    );
    let selectable = weights.iter().filter(|&&w| w > 0.0).count();
    assert_selectable(selectable, weights.len(), path_len);
    weighted_distinct_precounted(weights, rng, path_len)
}

/// The draw core behind [`weighted_distinct`], with validation and the
/// selectable count already done by the caller (the fused weight pass).
/// The total is maintained as a running sum, decremented as picks are
/// zeroed (O(n) per draw for the scan, no O(n) re-summation). For
/// integer-valued weights below 2⁵³ every partial sum is exact, so the
/// draw sequence is bit-identical to the historical recompute-the-sum
/// implementation — pinned by `tests/path_selection.rs` — and to the
/// Fenwick sampler's tree descent.
fn weighted_distinct_precounted(
    mut weights: Vec<f64>,
    rng: &mut SimRng,
    path_len: usize,
) -> Vec<usize> {
    let mut chosen: Vec<usize> = Vec::with_capacity(path_len);
    // Zero weights contribute exactly 0.0, so the total — and therefore
    // every draw — is bit-identical to a directory without them.
    let mut total: f64 = weights.iter().sum();
    for _ in 0..path_len {
        debug_assert!(total > 0.0);
        let mut x = rng.range_f64(0.0, total);
        // `pick` tracks the last positive-weight index visited, so a
        // floating-point overrun of `x` past the (inexact) running total
        // still lands on a selectable relay instead of a zeroed one.
        let mut pick = usize::MAX;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            pick = i;
            if x < w {
                break;
            }
            x -= w;
        }
        debug_assert!(pick != usize::MAX, "some weight must remain positive");
        chosen.push(pick);
        total -= weights[pick];
        weights[pick] = 0.0; // without replacement
    }
    chosen
}

/// The consensus-scale selection path: a [`Sampler`] maintained
/// incrementally plus reusable scratch buffers, owned by the network's
/// placement state. One engine serves one `(policy, directory)` pair;
/// the caller routes load-ledger and liveness changes through
/// [`SelectionEngine::load_changed`] / [`SelectionEngine::relay_changed`]
/// so the sampler's weights always mirror what the policy would compute
/// from scratch.
///
/// Steady-state [`SelectionEngine::select`] calls allocate nothing: the
/// uniform fast path permutes a persistent identity buffer and undoes
/// its swaps (reproducing [`SimRng::sample_distinct`] pick for pick),
/// and the weighted path draws from the sampler into a reusable pick
/// buffer. [`SelectionEngine::scratch_footprint`] exposes the buffer
/// capacities so benches can assert flatness.
#[derive(Debug)]
pub struct SelectionEngine {
    sampler: Sampler,
    load_sensitive: bool,
    uniform_fast: bool,
    incremental: bool,
    /// Persistent `0..n` buffer for the uniform Fisher–Yates fast path.
    identity: Vec<usize>,
    /// Swap log of the current uniform draw, undone after each select.
    swaps: Vec<(usize, usize)>,
    /// Reusable output buffer.
    picks: Vec<usize>,
}

impl SelectionEngine {
    /// Builds the engine for `policy` over the current view, seeding the
    /// sampler with the policy's weights (dark relays weigh zero).
    pub fn new(
        policy: &dyn PathSelection,
        view: &DirectoryView<'_>,
        kind: SamplerKind,
    ) -> SelectionEngine {
        let weights: Vec<f64> = (0..view.len())
            .map(|i| effective_weight(policy, view, i))
            .collect();
        SelectionEngine {
            sampler: Sampler::build(kind, &weights),
            load_sensitive: policy.load_sensitive(),
            uniform_fast: policy.draws_uniform(),
            incremental: policy.incremental(),
            identity: (0..view.len()).collect(),
            swaps: Vec::new(),
            picks: Vec::new(),
        }
    }

    /// The active sampler implementation ("linear" / "fenwick") —
    /// experiment labels and bench keys.
    pub fn sampler_name(&self) -> &'static str {
        self.sampler.name()
    }

    /// Number of relays with positive weight (O(1)).
    pub fn selectable(&self) -> usize {
        self.sampler.selectable()
    }

    /// Re-derives one relay's weight after *any* change (liveness flip,
    /// load change on a load-sensitive policy) and point-updates the
    /// sampler — O(log n) with the Fenwick tree.
    pub fn relay_changed(
        &mut self,
        policy: &dyn PathSelection,
        view: &DirectoryView<'_>,
        relay: usize,
    ) {
        if !self.incremental {
            return;
        }
        self.sampler
            .set(relay, effective_weight(policy, view, relay));
    }

    /// Routes a load-ledger change: only load-sensitive policies have
    /// load in their weight, so everyone else skips the update.
    pub fn load_changed(
        &mut self,
        policy: &dyn PathSelection,
        view: &DirectoryView<'_>,
        relay: usize,
    ) {
        if self.load_sensitive {
            self.relay_changed(policy, view, relay);
        }
    }

    /// Selects `path_len` distinct relay indices — the same picks
    /// `policy.select(view, rng, path_len)` would return (exactly: the
    /// two consume identical randomness), without rebuilding weights or
    /// allocating. The returned slice borrows the engine's pick buffer.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `path_len` relays are selectable.
    pub fn select(
        &mut self,
        policy: &dyn PathSelection,
        view: &DirectoryView<'_>,
        rng: &mut SimRng,
        path_len: usize,
    ) -> &[usize] {
        if !self.incremental {
            // Bespoke-select policy: delegate (allocates, by design).
            let picks = policy.select(view, rng, path_len);
            self.picks.clear();
            self.picks.extend_from_slice(&picks);
            return &self.picks;
        }
        if self.uniform_fast && view.all_selectable() {
            assert_path_fits(view, path_len);
            // `SimRng::sample_distinct` without its O(n) allocation:
            // the same `range_usize(i, n)` swap sequence on the
            // persistent identity buffer, undone afterwards (a swap is
            // its own inverse, so reversing the log restores 0..n).
            let n = view.len();
            self.picks.clear();
            for i in 0..path_len {
                let j = rng.range_usize(i, n);
                self.identity.swap(i, j);
                self.swaps.push((i, j));
            }
            self.picks.extend_from_slice(&self.identity[..path_len]);
            while let Some((i, j)) = self.swaps.pop() {
                self.identity.swap(i, j);
            }
        } else {
            assert_selectable(self.sampler.selectable(), view.len(), path_len);
            self.sampler.draw_distinct(rng, path_len, &mut self.picks);
        }
        &self.picks
    }

    /// Scratch-buffer capacities `(picks, swaps, sampler undo)` — the
    /// flat-allocation telemetry the selection bench asserts on: after
    /// warm-up these must not grow, or the "zero-alloc fast path" has
    /// silently regressed to per-call allocation.
    pub fn scratch_footprint(&self) -> (usize, usize, usize) {
        (
            self.picks.capacity(),
            self.swaps.capacity(),
            self.sampler.scratch_capacity(),
        )
    }
}

/// The weight the sampler must carry for `relay` right now: the
/// policy's weight for selectable relays, zero for dark or excluded
/// ones.
fn effective_weight(policy: &dyn PathSelection, view: &DirectoryView<'_>, relay: usize) -> f64 {
    if view.is_selectable(relay) {
        policy.relay_weight(view, relay)
    } else {
        0.0
    }
}

/// Every relay is equally likely — the paper's default placement.
#[derive(Clone, Copy, Debug, Default)]
pub struct Uniform;

impl PathSelection for Uniform {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn relay_weight(&self, _view: &DirectoryView<'_>, _relay: usize) -> f64 {
        1.0
    }

    fn draws_uniform(&self) -> bool {
        true
    }
}

/// Probability proportional to access bandwidth — Tor's consensus-
/// bandwidth weighting, the baseline the paper's star evaluation models.
#[derive(Clone, Copy, Debug, Default)]
pub struct BandwidthWeighted;

impl PathSelection for BandwidthWeighted {
    fn name(&self) -> &'static str {
        "bandwidth"
    }

    fn relay_weight(&self, view: &DirectoryView<'_>, relay: usize) -> f64 {
        // Bit/s rates are integers below 2^53: already quantized.
        view.bandwidth_bps(relay) as f64
    }
}

/// Prefer low access-delay relays (cf. ShorTor's latency-driven routing
/// in PAPERS.md): weight `round(1 / delay²)`. The inverse-square
/// emphasis makes the preference decisive over the narrow delay ranges
/// directories generate, while never excluding a relay outright (the
/// delay floor keeps the rounded weight ≥ 1 for every sub-second
/// delay).
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencyAware;

/// Floor applied to access delays before inverting, so a zero-delay
/// test relay cannot produce an infinite weight (cap: 1e12, far below
/// the sampler's 2⁵³ exactness bound even at 7k relays).
const MIN_DELAY_S: f64 = 1e-6;

impl PathSelection for LatencyAware {
    fn name(&self) -> &'static str {
        "latency"
    }

    fn relay_weight(&self, view: &DirectoryView<'_>, relay: usize) -> f64 {
        let d = view.delay(relay).as_secs_f64().max(MIN_DELAY_S);
        (1.0 / (d * d)).round()
    }
}

/// Penalize relays by active-circuit load per unit bandwidth (cf. Imani
/// et al.'s congestion-aware relay choice in PAPERS.md): weight
/// `round(bw / (1 + load))`, i.e. bandwidth-proportional selection
/// discounted by the circuits already routed through the relay. With
/// zero load everywhere this intentionally reduces to
/// [`BandwidthWeighted`] (the rounding is exact at load 0); load
/// feedback is what differentiates it mid-experiment.
#[derive(Clone, Copy, Debug, Default)]
pub struct CongestionAware;

impl PathSelection for CongestionAware {
    fn name(&self) -> &'static str {
        "congestion"
    }

    fn relay_weight(&self, view: &DirectoryView<'_>, relay: usize) -> f64 {
        (view.bandwidth_bps(relay) as f64 / (1.0 + f64::from(view.load(relay)))).round()
    }

    fn load_sensitive(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::DirectoryConfig;
    use netsim::bandwidth::Bandwidth;

    fn rng() -> SimRng {
        SimRng::seed_from(42)
    }

    fn spec(mbps: u64, delay_ms: u64) -> RelaySpec {
        RelaySpec {
            bandwidth: Bandwidth::from_mbps(mbps),
            delay: SimDuration::from_millis(delay_ms),
        }
    }

    fn dir_of(specs: Vec<RelaySpec>) -> Directory {
        Directory::from_specs(specs)
    }

    #[test]
    fn every_policy_returns_distinct_in_range_indices() {
        let dir = Directory::generate(&DirectoryConfig::default(), &rng());
        let load = vec![0u32; dir.len()];
        for policy in all_policies() {
            let mut r = rng();
            for _ in 0..100 {
                let view = dir.view(&load);
                let p = policy.select(&view, &mut r, 3);
                assert_eq!(p.len(), 3, "{}", policy.name());
                let mut q = p.clone();
                q.sort_unstable();
                q.dedup();
                assert_eq!(q.len(), 3, "{} repeated a relay", policy.name());
                assert!(p.iter().all(|&i| i < dir.len()), "{}", policy.name());
            }
        }
    }

    #[test]
    fn uniform_matches_raw_distinct_sampling() {
        let dir = Directory::generate(&DirectoryConfig::default(), &rng());
        let load = vec![0u32; dir.len()];
        let mut a = rng();
        let mut b = rng();
        for _ in 0..50 {
            let view = dir.view(&load);
            assert_eq!(
                Uniform.select(&view, &mut a, 3),
                b.sample_distinct(dir.len(), 3)
            );
        }
    }

    #[test]
    fn bandwidth_weighted_prefers_fat_relays() {
        // One relay 1000× the bandwidth of the others: it should appear
        // in nearly every 1-relay path.
        let mut specs = vec![spec(1, 10); 10];
        specs[4] = spec(1000, 10);
        let dir = dir_of(specs);
        let load = vec![0u32; dir.len()];
        let mut r = rng();
        let hits = (0..200)
            .filter(|_| {
                let view = dir.view(&load);
                BandwidthWeighted.select(&view, &mut r, 1)[0] == 4
            })
            .count();
        assert!(hits > 150, "fat relay picked only {hits}/200 times");
    }

    #[test]
    fn latency_aware_prefers_near_relays() {
        // One relay at 1 ms among relays at 30 ms: the inverse-square
        // weight gives it ~99% of the mass.
        let mut specs = vec![spec(50, 30); 10];
        specs[7] = spec(50, 1);
        let dir = dir_of(specs);
        let load = vec![0u32; dir.len()];
        let mut r = rng();
        let hits = (0..200)
            .filter(|_| {
                let view = dir.view(&load);
                LatencyAware.select(&view, &mut r, 1)[0] == 7
            })
            .count();
        assert!(hits > 150, "near relay picked only {hits}/200 times");
    }

    #[test]
    fn latency_aware_tolerates_zero_delay() {
        let dir = dir_of(vec![
            RelaySpec {
                bandwidth: Bandwidth::from_mbps(10),
                delay: SimDuration::ZERO,
            };
            4
        ]);
        let load = vec![0u32; 4];
        let mut r = rng();
        let view = dir.view(&load);
        let p = LatencyAware.select(&view, &mut r, 2);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn congestion_aware_reduces_to_bandwidth_at_zero_load() {
        let dir = Directory::generate(&DirectoryConfig::default(), &rng());
        let load = vec![0u32; dir.len()];
        let mut a = rng();
        let mut b = rng();
        for _ in 0..50 {
            let view = dir.view(&load);
            assert_eq!(
                CongestionAware.select(&view, &mut a, 3),
                BandwidthWeighted.select(&view, &mut b, 3),
                "zero load must reproduce the Tor baseline"
            );
        }
    }

    #[test]
    fn congestion_aware_avoids_loaded_relays() {
        // Equal bandwidths, but relay 2 already carries 50 circuits: its
        // weight collapses to ~2% of an idle relay's.
        let dir = dir_of(vec![spec(20, 5); 8]);
        let mut load = vec![0u32; 8];
        load[2] = 50;
        let mut r = rng();
        let hits = (0..400)
            .filter(|_| {
                let view = dir.view(&load);
                CongestionAware.select(&view, &mut r, 1)[0] == 2
            })
            .count();
        // Idle expectation would be 50; the penalty pushes it near 1.
        assert!(hits < 15, "loaded relay still picked {hits}/400 times");
    }

    #[test]
    fn congestion_aware_trades_bandwidth_against_load() {
        // A 100 Mbit/s relay carrying 9 circuits weighs 10 Mbit/s
        // effective — exactly an idle 10 Mbit/s relay. A 3× idle relay
        // must then dominate both.
        let dir = dir_of(vec![spec(100, 5), spec(30, 5), spec(10, 5)]);
        let load = vec![9u32, 0, 0];
        let mut r = rng();
        let mut counts = [0usize; 3];
        for _ in 0..600 {
            let view = dir.view(&load);
            counts[CongestionAware.select(&view, &mut r, 1)[0]] += 1;
        }
        assert!(
            counts[1] > counts[0] && counts[1] > counts[2],
            "30 Mbit/s idle relay must dominate: {counts:?}"
        );
    }

    #[test]
    fn weighted_draw_sequence_matches_naive_resummation() {
        // The running-total optimization must reproduce the historical
        // recompute-the-sum implementation draw for draw (exact, because
        // bandwidth weights are integers below 2^53).
        fn naive(weights: &mut [f64], rng: &mut SimRng, k: usize) -> Vec<usize> {
            let mut chosen = Vec::with_capacity(k);
            for _ in 0..k {
                let total: f64 = weights.iter().sum();
                let mut x = rng.range_f64(0.0, total);
                let mut pick = weights.len() - 1;
                for (i, &w) in weights.iter().enumerate() {
                    if w > 0.0 && x < w {
                        pick = i;
                        break;
                    }
                    x -= w;
                }
                chosen.push(pick);
                weights[pick] = 0.0;
            }
            chosen
        }
        for seed in [1u64, 9, 33, 71] {
            let dir = Directory::generate(
                &DirectoryConfig {
                    relays: 40,
                    ..DirectoryConfig::default()
                },
                &SimRng::seed_from(seed),
            );
            let weights: Vec<f64> = dir.bandwidths_bps().iter().map(|&bps| bps as f64).collect();
            let mut a = SimRng::seed_from(seed ^ 0xABCD);
            let mut b = a.clone();
            for _ in 0..200 {
                let fast = weighted_distinct(weights.clone(), &mut a, 5);
                let slow = naive(&mut weights.clone(), &mut b, 5);
                assert_eq!(fast, slow, "seed {seed}: draw sequences diverged");
            }
        }
    }

    #[test]
    fn zero_weight_relays_are_skipped_not_fatal() {
        // Regression: a weight vector containing dead relays (zero
        // weight — a zero-consensus-bandwidth entry, or any future
        // policy that excludes relays outright) used to trip
        // `weighted_distinct`'s everything-positive debug assertion on
        // entry. Dead entries must instead be silently unselectable.
        let weights = vec![5.0e6, 0.0, 3.0e6, 0.0, 2.0e6, 1.0e6];
        let mut r = rng();
        for _ in 0..300 {
            let picks = weighted_distinct(weights.clone(), &mut r, 3);
            assert_eq!(picks.len(), 3);
            assert!(
                picks.iter().all(|&i| weights[i] > 0.0),
                "picked a zero-weight relay: {picks:?}"
            );
            let mut dedup = picks.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "repeated a relay: {picks:?}");
        }
    }

    #[test]
    fn zero_weights_leave_the_draw_sequence_unchanged() {
        // Dead relays contribute exactly 0.0 to every partial sum, so a
        // directory with them interleaved must reproduce the dense
        // directory's draw sequence bit for bit (with indices remapped).
        let dense = vec![5.0e6, 3.0e6, 2.0e6, 7.0e6];
        let sparse = vec![5.0e6, 0.0, 3.0e6, 2.0e6, 0.0, 7.0e6];
        // sparse index -> dense index for the positive entries.
        let remap = [0usize, usize::MAX, 1, 2, usize::MAX, 3];
        let mut a = rng();
        let mut b = rng();
        for _ in 0..100 {
            let d = weighted_distinct(dense.clone(), &mut a, 2);
            let s = weighted_distinct(sparse.clone(), &mut b, 2);
            let s_mapped: Vec<usize> = s.iter().map(|&i| remap[i]).collect();
            assert_eq!(d, s_mapped, "zero weights perturbed the draws");
        }
    }

    #[test]
    fn dark_relays_are_never_selected() {
        // Half the directory goes dark: every policy must route around
        // it — including Uniform, whose fast path only covers all-live.
        let mut dir = dir_of(vec![spec(20, 5); 10]);
        for r in [1usize, 3, 5, 7, 9] {
            dir.set_live(r, false);
        }
        let load = vec![0u32; 10];
        for policy in all_policies() {
            let mut r = rng();
            for _ in 0..50 {
                let view = dir.view(&load);
                let picks = policy.select(&view, &mut r, 3);
                assert!(
                    picks.iter().all(|&i| dir.is_live(i)),
                    "{} picked a dark relay: {picks:?}",
                    policy.name()
                );
            }
        }
    }

    #[test]
    fn excluded_relays_are_never_selected() {
        // Blame-driven exclusions must gate every policy — including
        // Uniform, whose fast path must fall back to the weighted draw.
        let dir = dir_of(vec![spec(20, 5); 10]);
        let load = vec![0u32; 10];
        let mut excluded = vec![false; 10];
        for r in [2usize, 4, 6] {
            excluded[r] = true;
        }
        for policy in all_policies() {
            let mut r = rng();
            for _ in 0..50 {
                let view = DirectoryView::with_exclusions(&dir, &load, &excluded);
                let picks = policy.select(&view, &mut r, 3);
                assert!(
                    picks.iter().all(|&i| !excluded[i]),
                    "{} picked an excluded relay: {picks:?}",
                    policy.name()
                );
            }
        }
    }

    #[test]
    fn all_false_exclusion_column_is_bit_identical() {
        // The fault-path seam must be free when nothing is excluded: an
        // all-false column consumes identical randomness and returns
        // identical picks to a plain view.
        let dir = Directory::generate(&DirectoryConfig::default(), &rng());
        let load = vec![0u32; dir.len()];
        let excluded = vec![false; dir.len()];
        for policy in all_policies() {
            let mut a = rng();
            let mut b = rng();
            for _ in 0..50 {
                let plain = policy.select(&DirectoryView::new(&dir, &load), &mut a, 3);
                let gated = policy.select(
                    &DirectoryView::with_exclusions(&dir, &load, &excluded),
                    &mut b,
                    3,
                );
                assert_eq!(plain, gated, "{}", policy.name());
            }
        }
    }

    #[test]
    fn engine_honours_exclusions_like_the_policy() {
        // The incremental engine must track exclusion flips exactly as
        // the per-call default implementation sees them.
        for kind in [SamplerKind::Linear, SamplerKind::Fenwick] {
            for policy in all_policies() {
                let dir = dir_of(vec![spec(20, 5); 12]);
                let load = vec![0u32; 12];
                let mut excluded = vec![false; 12];
                let mut engine = SelectionEngine::new(
                    policy.as_ref(),
                    &DirectoryView::with_exclusions(&dir, &load, &excluded),
                    kind,
                );
                let mut a = SimRng::seed_from(3);
                let mut b = a.clone();
                for round in 0..24 {
                    if round % 4 == 1 && round / 4 < 12 {
                        let r = round / 4 * 3 % 12;
                        excluded[r] = true;
                        engine.relay_changed(
                            policy.as_ref(),
                            &DirectoryView::with_exclusions(&dir, &load, &excluded),
                            r,
                        );
                    }
                    let view = DirectoryView::with_exclusions(&dir, &load, &excluded);
                    let want = policy.select(&view, &mut a, 3);
                    let got = engine.select(policy.as_ref(), &view, &mut b, 3);
                    assert_eq!(
                        got,
                        want.as_slice(),
                        "{} {kind:?} round {round}",
                        policy.name()
                    );
                    assert!(got.iter().all(|&i| !excluded[i]));
                }
            }
        }
    }

    #[test]
    fn engine_reproduces_policy_selects() {
        // The incremental engine and the per-call default implementation
        // must consume identical randomness and return identical picks,
        // for every shipped policy and both sampler implementations —
        // including under load changes and liveness flips between
        // selects.
        for kind in [SamplerKind::Linear, SamplerKind::Fenwick] {
            for policy in all_policies() {
                let dir_rng = SimRng::seed_from(7);
                let mut dir = Directory::generate(
                    &DirectoryConfig {
                        relays: 25,
                        ..DirectoryConfig::default()
                    },
                    &dir_rng,
                );
                let mut load = vec![0u32; dir.len()];
                let mut engine = SelectionEngine::new(policy.as_ref(), &dir.view(&load), kind);
                let mut a = SimRng::seed_from(99);
                let mut b = a.clone();
                let mut mutate = SimRng::seed_from(5);
                for round in 0..60 {
                    let view = dir.view(&load);
                    let want = policy.select(&view, &mut a, 3);
                    let got = engine.select(policy.as_ref(), &view, &mut b, 3);
                    assert_eq!(
                        got,
                        want.as_slice(),
                        "{} {:?} round {round}",
                        policy.name(),
                        kind
                    );
                    // Mutate load and liveness like the network would,
                    // keeping the engine in the loop.
                    let r = mutate.range_usize(0, dir.len());
                    load[r] = (load[r] + 1) % 7;
                    engine.load_changed(policy.as_ref(), &dir.view(&load), r);
                    if round % 10 == 9 {
                        let d = mutate.range_usize(0, dir.len());
                        let next = !dir.is_live(d);
                        dir.set_live(d, next);
                        engine.relay_changed(policy.as_ref(), &dir.view(&load), d);
                    }
                }
            }
        }
    }

    #[test]
    fn engine_scratch_stays_flat() {
        let dir = Directory::generate(
            &DirectoryConfig {
                relays: 100,
                ..DirectoryConfig::default()
            },
            &rng(),
        );
        let load = vec![0u32; dir.len()];
        for policy in all_policies() {
            let mut engine =
                SelectionEngine::new(policy.as_ref(), &dir.view(&load), SamplerKind::Fenwick);
            let mut r = rng();
            // Warm up, then assert capacities never move again.
            for _ in 0..5 {
                engine.select(policy.as_ref(), &dir.view(&load), &mut r, 3);
            }
            let warm = engine.scratch_footprint();
            for _ in 0..200 {
                engine.select(policy.as_ref(), &dir.view(&load), &mut r, 3);
            }
            assert_eq!(
                engine.scratch_footprint(),
                warm,
                "{}: scratch buffers must stop growing after warm-up",
                policy.name()
            );
        }
    }

    #[test]
    #[should_panic(expected = "selectable (positive weight)")]
    fn too_few_selectable_relays_panics_clearly() {
        // Three relays, two of them dead: a 3-relay path is impossible
        // and must fail loudly with the shortfall named.
        let _ = weighted_distinct(vec![0.0, 4.0e6, 0.0], &mut rng(), 3);
    }

    #[test]
    #[should_panic(expected = "distinct relays")]
    fn path_longer_than_directory_panics() {
        let dir = dir_of(vec![spec(1, 0)]);
        let load = vec![0u32];
        let view = dir.view(&load);
        let _ = Uniform.select(&view, &mut rng(), 2);
    }

    #[test]
    #[should_panic(expected = "one load counter per relay")]
    fn mismatched_load_slice_rejected() {
        let dir = dir_of(vec![spec(1, 1); 3]);
        let load = vec![0u32; 2];
        let _ = DirectoryView::new(&dir, &load);
    }
}
