//! Consensus epoch churn, end to end: relays join and leave the live
//! set at epoch boundaries while circuits carry traffic. The properties
//! under test are the conservation laws of DESIGN.md §11 — no flow lost
//! or duplicated across a relay departure, the placement load ledger
//! always equals the surviving accounted incarnations, every counter
//! returns to zero after a full teardown — plus determinism: epoch runs
//! are bit-identical across seeds, event-queue implementations, and
//! sampler implementations.

use std::sync::Arc;

use relaynet::builder::baseline_factory;
use relaynet::runtime::fingerprint;
use relaynet::sampler::SamplerKind;
use relaynet::selection::CongestionAware;
use relaynet::workload::{ArrivalSpec, EpochSpec, WorkloadSpec};
use relaynet::{DirectoryConfig, StarScenario, TorEvent};
use simcore::event::QueueKind;
use simcore::sim::StopReason;

fn epoch_scenario() -> StarScenario {
    StarScenario {
        circuits: 12,
        relays_per_circuit: 3,
        file_bytes: 120_000,
        directory: DirectoryConfig {
            relays: 20,
            bandwidth_mbps: (15.0, 60.0),
            delay_ms: (2.0, 6.0),
        },
        selection: Arc::new(CongestionAware),
        workload: WorkloadSpec {
            streams_per_circuit: 2,
            arrival: ArrivalSpec::UniformJitter { max_ms: 20.0 },
            churn: None,
        },
        epochs: Some(EpochSpec {
            interval_ms: 120.0,
            epochs: 4,
            churn: 3,
            standby_fraction: 0.25,
        }),
        ..Default::default()
    }
}

#[test]
fn epochs_apply_and_no_flow_is_lost_or_duplicated() {
    let scenario = epoch_scenario();
    let (mut sim, circuits) = scenario.build(baseline_factory(Default::default()), 31);
    let report = sim.run();
    assert_eq!(report.reason, StopReason::QueueEmpty);
    let world = sim.world();
    assert_eq!(world.stats().protocol_errors, 0);
    assert_eq!(world.stats().epochs_applied, 4, "every epoch consumed");
    assert!(
        world.stats().relays_departed > 0,
        "churn must actually remove relays"
    );
    assert!(world.stats().relays_joined > 0, "standby relays must join");
    // Byte conservation across departures: every flow completes exactly
    // once, summing to exactly the requested bytes.
    let total_requested = 120_000u64 * circuits.len() as u64;
    let mut delivered = 0u64;
    for f in world.flows() {
        assert!(f.complete(), "an epoch departure stranded a flow");
        assert_eq!(f.delivered, f.requested, "over- or under-delivery");
        delivered += f.delivered;
    }
    assert_eq!(delivered, total_requested);
    // Epoch-driven teardowns flowed through the rebuild machinery.
    if world.stats().epoch_teardowns > 0 {
        assert!(
            world.stats().rebuilds > 0,
            "torn-down circuits with unfinished flows must rebuild"
        );
    }
    // Every rebuilt path avoids relays dark at the end... only checkable
    // for the final incarnations (earlier ones were legitimately built
    // when their relays were live). The ledger check below subsumes the
    // structural invariants.
    assert!(world.verify_placement_ledger(), "ledger out of sync");
}

#[test]
fn load_ledger_equals_surviving_incarnations_after_every_epoch() {
    // Pause the simulator just after each epoch boundary and check the
    // ledger invariant mid-run, not only at quiescence.
    let scenario = epoch_scenario();
    let (mut sim, _) = scenario.build(baseline_factory(Default::default()), 57);
    let interval_ms = 120u64;
    for epoch in 1..=4u64 {
        let report = sim.run_with_limits(simcore::sim::RunLimits {
            until: Some(simcore::time::SimTime::from_millis(
                interval_ms * epoch + 10,
            )),
            max_events: None,
        });
        let world = sim.world();
        assert!(
            world.verify_placement_ledger(),
            "ledger out of sync after epoch {epoch}"
        );
        assert_eq!(world.stats().protocol_errors, 0);
        if report.reason == StopReason::QueueEmpty {
            break;
        }
    }
    let report = sim.run();
    assert_eq!(report.reason, StopReason::QueueEmpty);
    assert!(sim.world().verify_placement_ledger());
}

#[test]
fn full_teardown_returns_every_load_counter_to_zero() {
    // After the run completes, tear down every live circuit: the load
    // view must return to all-zero — no leaked +1 from epoch churn, no
    // double-decrement from teardown racing an epoch.
    let scenario = epoch_scenario();
    let (mut sim, circuits) = scenario.build(baseline_factory(Default::default()), 73);
    sim.run();
    for c in circuits {
        sim.schedule_in(
            simcore::time::SimDuration::from_millis(1),
            TorEvent::Teardown(c),
        );
    }
    // Later incarnations created by rebuilds also need tearing down;
    // sweep every registered circuit id (teardown no-ops on vacant
    // or already-closed ones).
    let count = sim.world().circuit_count();
    for i in 0..count {
        sim.schedule_in(
            simcore::time::SimDuration::from_millis(2),
            TorEvent::Teardown(relaynet::CircId(i as u32)),
        );
    }
    sim.run();
    let world = sim.world();
    assert_eq!(world.stats().protocol_errors, 0);
    let loads = world.relay_loads().expect("placement installed");
    assert!(
        loads.iter().all(|&l| l == 0),
        "load ledger must drain to zero after full teardown: {loads:?}"
    );
    assert!(world.verify_placement_ledger());
}

#[test]
fn epoch_runs_are_deterministic_and_queue_invariant() {
    let scenario = epoch_scenario();
    let run = |queue: QueueKind| {
        let (mut sim, _) =
            scenario.build_with_queue(baseline_factory(Default::default()), 91, queue);
        let report = sim.run();
        fingerprint(sim.world(), report.events_processed)
    };
    let a = run(QueueKind::Calendar);
    let b = run(QueueKind::Calendar);
    assert_eq!(a, b, "same seed, same queue must be bit-identical");
    let c = run(QueueKind::BinaryHeap);
    assert_eq!(a, c, "epoch churn must stay queue-invariant");
    assert!(!a.relay_live.is_empty(), "fingerprint must carry liveness");
}

#[test]
fn sampler_choice_does_not_perturb_the_experiment() {
    // Linear vs Fenwick behind the same policy and seed: full-run
    // fingerprints must be identical — the pick-equivalence contract
    // holding end to end, under epoch churn and congestion feedback.
    let run = |kind: SamplerKind| {
        let scenario = StarScenario {
            sampler: kind,
            ..epoch_scenario()
        };
        let (mut sim, _) = scenario.build(baseline_factory(Default::default()), 113);
        let report = sim.run();
        (
            sim.world().selection_sampler_name(),
            fingerprint(sim.world(), report.events_processed),
        )
    };
    let (name_l, fp_l) = run(SamplerKind::Linear);
    let (name_f, fp_f) = run(SamplerKind::Fenwick);
    assert_eq!(name_l, Some("linear"));
    assert_eq!(name_f, Some("fenwick"));
    assert_eq!(fp_l, fp_f, "sampler seam changed the experiment");
}

#[test]
fn no_epoch_config_means_no_behaviour_change() {
    // A scenario without epochs must stay bit-identical to the same
    // scenario built before the epoch engine existed — the "epochs" RNG
    // stream is only derived when configured, and every relay stays
    // live. Guarded by comparing against the epoch-free fingerprint of
    // the same scenario with the epoch field explicitly defaulted.
    let base = StarScenario {
        epochs: None,
        ..epoch_scenario()
    };
    let (mut sim, _) = base.build(baseline_factory(Default::default()), 17);
    let report = sim.run();
    let world = sim.world();
    assert_eq!(report.reason, StopReason::QueueEmpty);
    assert_eq!(world.stats().epochs_applied, 0);
    assert_eq!(world.stats().relays_departed, 0);
    let live = world.relay_live().expect("placement installed");
    assert!(live.iter().all(|&l| l), "every relay stays live");
    assert!(world.flows().iter().all(|f| f.complete()));
}
