//! End-to-end overlay benchmark: cells per second through a full 3-hop
//! circuit (client → 3 relays → server), the workload every layer of the
//! stack sits under — simcore's event loop, netsim's links, relaynet's
//! cell pipeline, torcell's crypto stand-in, and the congestion
//! controller under test.
//!
//! This is the headline number of the performance trajectory
//! (`BENCH_*.json`): a change that speeds up any hot layer moves it, and
//! a regression anywhere shows up here even if the micro-benches stay
//! flat. One iteration builds the scenario from scratch and runs the
//! transfer to quiescence, so setup cost is included — as it is in real
//! experiment sweeps, which construct thousands of short-lived worlds.

use std::sync::Arc;

use backtap::config::CcConfig;
use circuitstart::Algorithm;
use cs_bench::harness::Report;
use netsim::bandwidth::Bandwidth;
use netsim::link::LinkConfig;
use relaynet::builder::{fixed_window_factory, PathScenario, StarScenario};
use relaynet::pool::PayloadPool;
use relaynet::runtime::{FactoryMaker, ShardedStar, StatsKind};
use relaynet::selection::{all_policies, SelectionPolicy};
use relaynet::workload::{ArrivalSpec, ChurnSpec, FaultSpec, WorkloadSpec};
use relaynet::{CcFactory, DirectoryConfig, WorldConfig};
use simcore::event::QueueKind;
use simcore::exec::{DeterministicExecutor, Executor, ThreadedExecutor};
use simcore::time::SimDuration;

/// Transfer size per iteration; 512 KiB = 1058 DATA cells through 4 links.
const FILE_BYTES: u64 = 512 * 1024;

fn scenario() -> PathScenario {
    let hop = LinkConfig::new(Bandwidth::from_mbps(100), SimDuration::from_millis(2));
    PathScenario {
        hops: vec![hop; 4], // 3 relays
        file_bytes: FILE_BYTES,
        world: WorldConfig::default(),
        ..Default::default()
    }
}

/// Runs one full transfer and returns the DATA cells delivered.
fn run_once(factory: CcFactory) -> u64 {
    let (mut sim, h) = scenario().build(factory, 1);
    sim.run();
    let r = sim.world().result_of(h.circ);
    assert!(r.completed, "bench transfer must complete");
    assert_eq!(r.payload_errors, 0);
    assert_eq!(sim.world().stats().protocol_errors, 0);
    r.cells_delivered
}

fn bench_algorithm(report: &mut Report, key: &str, factory: impl Fn() -> CcFactory) {
    let cells = run_once(factory());
    report.bench_with_rate(
        &format!("overlay/3hop_512k/{key}"),
        cells as f64,
        "cells/s",
        || {
            std::hint::black_box(run_once(factory()));
        },
    );
}

/// The workload-engine case: 4 circuits × 3 multiplexed streams with
/// bursty on/off arrivals, each circuit torn down and rebuilt twice
/// mid-run. Exercises the churn-only code paths the single-transfer
/// case never touches — DESTROY waves, queue drains, slot/route/pool
/// reclamation, and flow re-attachment — under the same cells/s metric.
fn churn_scenario() -> StarScenario {
    StarScenario {
        circuits: 4,
        file_bytes: 256 * 1024,
        directory: DirectoryConfig {
            relays: 8,
            bandwidth_mbps: (30.0, 90.0),
            delay_ms: (2.0, 6.0),
        },
        workload: WorkloadSpec {
            streams_per_circuit: 3,
            arrival: ArrivalSpec::OnOff {
                burst: 2,
                gap_ms: (10.0, 50.0),
            },
            churn: Some(ChurnSpec {
                teardown_after_ms: (60.0, 150.0),
                rebuild_delay_ms: 10.0,
                cycles: 2,
            }),
        },
        ..Default::default()
    }
}

/// Runs one full churn experiment and returns DATA cells delivered
/// across all flows (including the re-sent share — that is the work the
/// engine performed).
fn run_churn_once(factory: CcFactory) -> u64 {
    let (mut sim, _) = churn_scenario().build(factory, 1);
    sim.run();
    let world = sim.world();
    assert_eq!(world.stats().protocol_errors, 0);
    assert!(world.stats().rebuilds > 0, "churn must actually churn");
    let mut cells = 0;
    for f in world.flows() {
        assert!(f.complete(), "bench workload must complete");
        cells += f.cells_delivered;
    }
    cells
}

fn bench_churn(report: &mut Report, key: &str, factory: impl Fn() -> CcFactory) {
    let cells = run_churn_once(factory());
    report.bench_with_rate(
        &format!("overlay/star_churn_4x3x2/{key}"),
        cells as f64,
        "cells/s",
        || {
            std::hint::black_box(run_churn_once(factory()));
        },
    );
}

/// The path-selection case: the same churning star as
/// `star_churn_4x3x2`, once per selection policy. Placement decides
/// which relays share circuits, so this measures both the selection
/// seam's own overhead (view construction, weighted draws, load
/// accounting — all off the per-cell path) and how much placement
/// quality moves end-to-end throughput under identical seeds.
fn policy_scenario(selection: SelectionPolicy) -> StarScenario {
    StarScenario {
        selection,
        ..churn_scenario()
    }
}

/// One full churn experiment under `selection`; returns delivered DATA
/// cells (as in [`run_churn_once`]).
fn run_policy_once(selection: SelectionPolicy, factory: CcFactory) -> u64 {
    let (mut sim, _) = policy_scenario(selection).build(factory, 1);
    sim.run();
    let world = sim.world();
    assert_eq!(world.stats().protocol_errors, 0);
    assert!(world.stats().rebuilds > 0, "churn must actually churn");
    let mut cells = 0;
    for f in world.flows() {
        assert!(f.complete(), "bench workload must complete");
        cells += f.cells_delivered;
    }
    cells
}

fn bench_policies(report: &mut Report) {
    for policy in all_policies() {
        let factory = || Algorithm::CircuitStart.factory(CcConfig::default());
        let cells = run_policy_once(policy.clone(), factory());
        report.bench_with_rate(
            &format!("overlay/star_policies/{}", policy.name()),
            cells as f64,
            "cells/s",
            || {
                std::hint::black_box(run_policy_once(policy.clone(), factory()));
            },
        );
    }
}

/// The consensus-scale selection case: the incremental engine over a
/// 7000-relay directory (the size of the real Tor consensus), linear
/// scan vs Fenwick tree behind the same congestion-aware policy. Each
/// "select" is a full placement round trip as the network performs it:
/// a 3-relay weighted draw without replacement, load-ledger increments
/// with point updates, and the retirement (decrement) of an old
/// circuit's relays — so the rate is placements/s at steady churn, not
/// an isolated draw. Both cases consume identical RNG streams (the
/// pick-equivalence contract), so the ratio is pure data-structure win.
fn bench_selection(report: &mut Report) {
    use relaynet::directory::Directory;
    use relaynet::sampler::SamplerKind;
    use relaynet::selection::{CongestionAware, DirectoryView, SelectionEngine};
    use simcore::rng::SimRng;

    const RELAYS: usize = 7000;
    const SELECTS_PER_ITER: usize = 64;
    const LIVE_CIRCUITS: usize = 64;

    let dir = Directory::generate(
        &DirectoryConfig {
            relays: RELAYS,
            ..DirectoryConfig::default()
        },
        &SimRng::seed_from(9),
    );
    let policy = CongestionAware;
    for (key, kind) in [
        ("linear", SamplerKind::Linear),
        ("fenwick", SamplerKind::Fenwick),
    ] {
        let mut load = vec![0u32; RELAYS];
        let mut engine = SelectionEngine::new(&policy, &DirectoryView::new(&dir, &load), kind);
        assert_eq!(engine.sampler_name(), key);
        let mut rng = SimRng::seed_from(4242);
        let mut history: std::collections::VecDeque<[usize; 3]> =
            std::collections::VecDeque::with_capacity(LIVE_CIRCUITS + 1);
        let round = |engine: &mut SelectionEngine,
                     load: &mut Vec<u32>,
                     history: &mut std::collections::VecDeque<[usize; 3]>,
                     rng: &mut SimRng| {
            let mut picks = [0usize; 3];
            picks.copy_from_slice(engine.select(&policy, &DirectoryView::new(&dir, load), rng, 3));
            for &r in &picks {
                load[r] += 1;
                engine.load_changed(&policy, &DirectoryView::new(&dir, load), r);
            }
            history.push_back(picks);
            if history.len() > LIVE_CIRCUITS {
                let old = history.pop_front().expect("non-empty");
                for &r in &old {
                    load[r] -= 1;
                    engine.load_changed(&policy, &DirectoryView::new(&dir, load), r);
                }
            }
        };
        // Warm-up past the point every scratch buffer reaches its
        // high-water mark, then pin the footprint: the steady state
        // must be allocation-flat (perf_opt acceptance criterion).
        for _ in 0..SELECTS_PER_ITER {
            round(&mut engine, &mut load, &mut history, &mut rng);
        }
        let footprint = engine.scratch_footprint();
        report.bench_with_rate(
            &format!("overlay/selection_7k/{key}"),
            SELECTS_PER_ITER as f64,
            "selects/s",
            || {
                for _ in 0..SELECTS_PER_ITER {
                    round(&mut engine, &mut load, &mut history, &mut rng);
                }
                std::hint::black_box(&load);
            },
        );
        assert_eq!(
            engine.scratch_footprint(),
            footprint,
            "{key}: selection scratch grew after warm-up — the fast path allocated"
        );
    }
}

/// The fault-recovery case: the churning star of `star_churn_4x3x2`
/// with two relay crashes and a transient stall injected mid-run
/// (DESIGN.md §12). The rate covers the full recovery loop — timer
/// chains, blame-driven re-selection, backoff rebuilds, reap/retire
/// reclamation — under the same cells/s metric; the fault-free star
/// cases staying flat against the previous trajectory point is the
/// proof the fault seam costs nothing when unconfigured.
fn faults_scenario() -> StarScenario {
    StarScenario {
        faults: Some(FaultSpec {
            crashes: 2,
            crash_window_ms: (40.0, 120.0),
            stalls: 1,
            stall_window_ms: (40.0, 120.0),
            stall_duration_ms: 60.0,
            stall_factor: 200.0,
            build_timeout_ms: 300.0,
            liveness_timeout_ms: 600.0,
            ..Default::default()
        }),
        directory: DirectoryConfig {
            relays: 16,
            bandwidth_mbps: (30.0, 90.0),
            delay_ms: (2.0, 6.0),
        },
        ..churn_scenario()
    }
}

/// One full faulty experiment; returns delivered DATA cells. Every flow
/// must still complete — the bench doubles as a recovery smoke.
fn run_faults_once(factory: CcFactory) -> u64 {
    let (mut sim, _) = faults_scenario().build(factory, 1);
    sim.run();
    let world = sim.world();
    assert_eq!(world.stats().protocol_errors, 0);
    assert!(
        world.stats().crashes_injected > 0,
        "fault schedule must fire"
    );
    let mut cells = 0;
    for f in world.flows() {
        assert!(f.complete(), "recovery must complete the bench workload");
        cells += f.cells_delivered;
    }
    cells
}

fn bench_faults(report: &mut Report) {
    let factory = || Algorithm::CircuitStart.factory(CcConfig::default());
    let cells = run_faults_once(factory());
    report.bench_with_rate(
        "overlay/star_faults/circuitstart",
        cells as f64,
        "cells/s",
        || {
            std::hint::black_box(run_faults_once(factory()));
        },
    );
}

/// The async-runtime scaling case: the churning star of
/// `star_churn_4x3x2`, sharded 8 ways and run across a work-stealing
/// pool at 1/2/4/8 workers. Each shard is a full deterministic world
/// (the oracle the differential suite compares against), so the rate
/// measures what the runtime seam buys: end-to-end experiment
/// throughput — the resource policy-evaluation sweeps are bounded by —
/// as a function of cores.
fn async_experiment() -> ShardedStar {
    ShardedStar {
        scenario: churn_scenario(),
        shards: 8,
        seed: 1,
        queue: QueueKind::default(),
        stats: StatsKind::default(),
    }
}

/// One full sharded sweep on `workers` workers; returns total DATA
/// cells delivered. Doubles as the pool-sizing smoke: with the
/// scenario-sized idle cap, steady-state allocations must stay flat
/// (bounded by in-flight peaks, reuse-dominated) instead of thrashing
/// alloc/free against the cap.
fn run_async_once(exp: &ShardedStar, exec: &dyn Executor) -> u64 {
    let maker: FactoryMaker = Arc::new(|| Algorithm::CircuitStart.factory(CcConfig::default()));
    let sweep = exp.run(exec, maker);
    assert_eq!(sweep.stats.protocol_errors, 0);
    assert!(sweep.stats.rebuilds > 0, "churn must actually churn");
    let cap = PayloadPool::scenario_max_idle(exp.scenario.circuits);
    for s in &sweep.shards {
        let (allocated, reused, _returned, _idle, idle_hwm) = s.fingerprint.pool;
        assert!(
            idle_hwm < cap,
            "shard {}: pool hit its idle cap ({idle_hwm} >= {cap}) — reclaims were dropped",
            s.shard
        );
        // "Flat" means: fresh allocations are bounded by the peak
        // in-flight payload population (circuits × window bound), never
        // by the number of cells transferred — transferring more data
        // must not allocate more.
        let flat_bound = exp.scenario.circuits * PayloadPool::CELLS_PER_CIRCUIT;
        assert!(
            (allocated as usize) <= flat_bound,
            "shard {}: {allocated} fresh allocations exceed the in-flight \
             bound {flat_bound} — the pool is thrashing",
            s.shard
        );
        assert!(reused > 0, "shard {}: the pool was never reused", s.shard);
    }
    sweep.cells_delivered
}

fn bench_async(report: &mut Report) {
    let exp = async_experiment();
    // The in-thread oracle first: the seam's own overhead is the gap
    // between this and the 1-worker threaded case.
    let det = DeterministicExecutor;
    let cells = run_async_once(&exp, &det);
    report.bench_with_rate(
        "overlay/star_async_8shard/det",
        cells as f64,
        "cells/s",
        || {
            std::hint::black_box(run_async_once(&exp, &det));
        },
    );
    for workers in [1usize, 2, 4, 8] {
        let exec = ThreadedExecutor::new(workers);
        let cells = run_async_once(&exp, &exec);
        report.bench_with_rate(
            &format!("overlay/star_async_8shard/{workers}w"),
            cells as f64,
            "cells/s",
            || {
                std::hint::black_box(run_async_once(&exp, &exec));
            },
        );
    }
}

/// The telemetry-aggregation case: the same experiment-level "merge 16
/// shards' completion distributions and read the tail" done both ways —
/// the legacy concatenate-and-sort of raw samples (O(flows) memory and
/// O(n log n) per aggregation) versus bucket-wise sketch merge
/// (O(buckets), independent of flow count). The rate is samples folded
/// per second; compare the two names within one BENCH file. Also pins
/// the O(buckets) memory claim: the merged sketch occupies exactly the
/// bytes an empty sketch does.
fn bench_telemetry(report: &mut Report) {
    const SHARDS: usize = 16;
    const PER_SHARD: usize = 50_000;
    // Deterministic skewed "completion times" per shard (seconds),
    // spanning three decades like a real tail.
    let shard_samples: Vec<Vec<f64>> = (0..SHARDS)
        .map(|s| {
            let mut x = (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            (0..PER_SHARD)
                .map(|_| {
                    // xorshift64* — cheap, seedable, good enough for a
                    // bench distribution.
                    x ^= x >> 12;
                    x ^= x << 25;
                    x ^= x >> 27;
                    let u =
                        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
                    0.01 + 10.0 * u * u * u
                })
                .collect()
        })
        .collect();
    let sketches: Vec<simstats::QuantileSketch> = shard_samples
        .iter()
        .map(|samples| {
            let mut sk = simstats::QuantileSketch::default();
            for &v in samples {
                sk.record(v);
            }
            sk
        })
        .collect();
    let total = (SHARDS * PER_SHARD) as f64;

    report.bench_with_rate("telemetry/merge_16shard/sort", total, "samples/s", || {
        let mut all: Vec<f64> = shard_samples.iter().flatten().copied().collect();
        all.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let cdf = simstats::Cdf::from_samples(all).unwrap();
        std::hint::black_box(cdf.p99());
    });
    report.bench_with_rate("telemetry/merge_16shard/sketch", total, "samples/s", || {
        let mut merged = simstats::QuantileSketch::default();
        for sk in &sketches {
            merged.merge(sk);
        }
        std::hint::black_box(merged.p99());
    });

    // The memory claim, asserted where the ratio is reported: 800k
    // samples leave the sketch exactly as large as an empty one, and
    // its tail answer stays inside the documented bound.
    let mut merged = simstats::QuantileSketch::default();
    for sk in &sketches {
        merged.merge(sk);
    }
    let empty = simstats::QuantileSketch::default();
    assert_eq!(merged.memory_bytes(), empty.memory_bytes());
    assert_eq!(merged.bucket_len(), empty.bucket_len());
    assert_eq!(merged.len(), SHARDS as u64 * PER_SHARD as u64);
    let mut all: Vec<f64> = shard_samples.iter().flatten().copied().collect();
    all.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
    let exact = simstats::Cdf::from_samples(all).unwrap();
    for q in [0.5, 0.99, 0.999] {
        let e = exact.quantile(q);
        assert!(
            (merged.quantile(q) - e).abs() <= merged.alpha() * e,
            "merged sketch q={q} strayed outside alpha"
        );
    }
}

fn main() {
    let mut report = Report::new();
    bench_algorithm(&mut report, "circuitstart", || {
        Algorithm::CircuitStart.factory(CcConfig::default())
    });
    bench_algorithm(&mut report, "backtap_classic", || {
        Algorithm::ClassicBacktap.factory(CcConfig::default())
    });
    bench_algorithm(&mut report, "fixed_window_64", || fixed_window_factory(64));
    bench_churn(&mut report, "circuitstart", || {
        Algorithm::CircuitStart.factory(CcConfig::default())
    });
    bench_policies(&mut report);
    bench_faults(&mut report);
    bench_selection(&mut report);
    bench_async(&mut report);
    bench_telemetry(&mut report);
    report.finish("bench_overlay");
}
