//! Per-hop RTT estimation.
//!
//! RTT here means **send-decision → feedback** time: the clock starts when
//! the transport releases a cell to the link layer (so queueing at the
//! node's own egress also counts — see DESIGN.md §4) and stops when the
//! successor's feedback for that cell arrives. `baseRtt` is the minimum
//! ever observed, as in TCP Vegas.

use simcore::time::SimDuration;

/// Tracks base (minimum), last, and aggregate RTT statistics for one hop.
#[derive(Clone, Debug, Default)]
pub struct RttEstimator {
    base: Option<SimDuration>,
    last: Option<SimDuration>,
    max: Option<SimDuration>,
    count: u64,
    total: SimDuration,
}

impl RttEstimator {
    /// Creates an estimator with no samples.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, rtt: SimDuration) {
        self.base = Some(match self.base {
            Some(b) => b.min(rtt),
            None => rtt,
        });
        self.max = Some(match self.max {
            Some(m) => m.max(rtt),
            None => rtt,
        });
        self.last = Some(rtt);
        self.count += 1;
        self.total += rtt;
    }

    /// The minimum RTT ever observed (`baseRtt`), if any sample exists.
    pub fn base(&self) -> Option<SimDuration> {
        self.base
    }

    /// The most recent sample.
    pub fn last(&self) -> Option<SimDuration> {
        self.last
    }

    /// The largest sample.
    pub fn max(&self) -> Option<SimDuration> {
        self.max
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples, or `None` before the first.
    pub fn mean(&self) -> Option<SimDuration> {
        if self.count == 0 {
            None
        } else {
            Some(self.total / self.count)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn empty_estimator() {
        let e = RttEstimator::new();
        assert_eq!(e.base(), None);
        assert_eq!(e.last(), None);
        assert_eq!(e.max(), None);
        assert_eq!(e.mean(), None);
        assert_eq!(e.count(), 0);
    }

    #[test]
    fn base_is_running_minimum() {
        let mut e = RttEstimator::new();
        e.record(ms(10));
        assert_eq!(e.base(), Some(ms(10)));
        e.record(ms(15));
        assert_eq!(e.base(), Some(ms(10)));
        e.record(ms(7));
        assert_eq!(e.base(), Some(ms(7)));
        assert_eq!(e.max(), Some(ms(15)));
        assert_eq!(e.last(), Some(ms(7)));
    }

    #[test]
    fn mean_and_count() {
        let mut e = RttEstimator::new();
        for v in [2, 4, 6] {
            e.record(ms(v));
        }
        assert_eq!(e.count(), 3);
        assert_eq!(e.mean(), Some(ms(4)));
    }
}
