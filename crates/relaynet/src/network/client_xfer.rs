//! Pipeline stage — endpoint applications (the data plane's two ends).
//!
//! The client side generates the transfer workload: each stream of the
//! circuit's workload opens with its own BEGIN once it has arrived and
//! the circuit is built; after its CONNECTED the client pumps its DATA
//! cells (wrapped for the server's onion layer, window permitting),
//! round-robining generation across the open streams, and finishes each
//! stream with one END. The server side consumes recognized forward
//! cells — answering BEGIN with CONNECTED, counting and verifying DATA
//! per stream (and crediting the stream's flow), and timestamping
//! completion. Cells are *generated lazily* inside the egress pump so
//! that onion-layer counters advance in exact send order.

use simcore::sim::Context;
use simcore::time::SimTime;

use torcell::cell::{Cell, CellBody, RelayCell, RelayCommand};
use torcell::crypto::payload_digest;
use torcell::ids::{CircuitId, StreamId};

use crate::event::TorEvent;
use crate::ids::{CircId, Direction, OverlayId};
use crate::node::{ClientApp, ClientStage, QueuedCell};
use crate::pool::PayloadPool;

use super::{fill_pattern_extend, verify_fill_pattern, TorNetwork, END_REASON_DONE};

impl TorNetwork {
    /// The BEGIN cell opening stream `sid` (recognized by the server's
    /// onion layer at `server_hop`).
    pub(super) fn begin_cell(sid: StreamId, server_hop: usize) -> QueuedCell {
        // ≥ 8 payload bytes so leaky-pipe recognition stays sound (a
        // near-empty payload could spuriously "recognize" early).
        let data = b"server:443".to_vec();
        let rc = RelayCell {
            cmd: RelayCommand::Begin,
            stream: sid,
            digest: payload_digest(&data),
            data,
        };
        QueuedCell {
            cell: Cell {
                circ: CircuitId::CONTROL,
                body: CellBody::Relay(rc),
            },
            confirm: None,
            wrap_for_hop: Some(server_hop),
        }
    }

    /// Produces the next client-originated cell — DATA round-robined
    /// across the open streams, or a stream's trailing END — or `None`
    /// if no stream has anything to send. DATA payload buffers come
    /// from `pool` (zero-allocation steady state: the server reclaims
    /// every consumed payload into the same pool).
    pub(super) fn generate_client_cell(
        client: Option<&mut ClientApp>,
        pool: &mut PayloadPool,
        circ: CircId,
        now: SimTime,
    ) -> Option<QueuedCell> {
        let app = client?;
        if app.stage != ClientStage::Established {
            return None;
        }
        let server_hop = app.server_hop();
        let n = app.streams.len();
        for k in 0..n {
            let i = (app.rr_cursor + k) % n;
            let s = &mut app.streams[i];
            if !(s.arrived && s.open) {
                continue;
            }
            if s.sent_cells < s.total_cells {
                let len = s.cell_len(s.sent_cells);
                s.sent_cells += 1;
                let sid = s.id;
                // The fill pattern indexes by the circuit-aggregate send
                // counter: the single-path FIFO delivers cells in send
                // order, so the server verifies with its (0-based)
                // aggregate arrival counter no matter how streams
                // interleave.
                let idx = app.sent_cells;
                app.sent_cells += 1;
                let mut payload = pool.acquire();
                fill_pattern_extend(circ, idx, len, &mut payload);
                if app.first_data_at.is_none() {
                    app.first_data_at = Some(now);
                }
                app.rr_cursor = (i + 1) % n;
                return Some(QueuedCell {
                    cell: Cell {
                        circ: CircuitId::CONTROL, // restamped at send
                        body: CellBody::Relay(RelayCell::data(sid, payload)),
                    },
                    confirm: None,
                    wrap_for_hop: Some(server_hop),
                });
            } else if !s.end_sent {
                s.end_sent = true;
                let sid = s.id;
                app.rr_cursor = (i + 1) % n;
                let data = vec![END_REASON_DONE; 8];
                let rc = RelayCell {
                    cmd: RelayCommand::End,
                    stream: sid,
                    digest: payload_digest(&data),
                    data,
                };
                return Some(QueuedCell {
                    cell: Cell {
                        circ: CircuitId::CONTROL,
                        body: CellBody::Relay(rc),
                    },
                    confirm: None,
                    wrap_for_hop: Some(server_hop),
                });
            }
        }
        None
    }

    /// The server recognized a forward cell.
    pub(super) fn server_consume(
        &mut self,
        ctx: &mut Context<'_, TorEvent>,
        server: OverlayId,
        circ: CircId,
        local: u32,
        rc: RelayCell,
    ) {
        let verify = self.cfg.verify_payload;
        let node = &mut self.nodes[server.index()];
        let my_net = node.net_node;
        let nc = node.circuit_at_mut(local);
        let app = nc.server.as_mut().expect("server app exists");
        match rc.cmd {
            RelayCommand::Begin => {
                let Some(stream) = app.stream_mut(rc.stream) else {
                    Self::protocol_error(&mut self.stats, "BEGIN outside the workload");
                    return;
                };
                if stream.open {
                    Self::protocol_error(&mut self.stats, "duplicate BEGIN for a stream");
                    return;
                }
                stream.open = true;
                let data = vec![0xC0u8; 8];
                let mut reply = RelayCell {
                    cmd: RelayCommand::Connected,
                    stream: rc.stream,
                    digest: payload_digest(&data),
                    data,
                };
                nc.crypt
                    .as_mut()
                    .expect("server has crypt state")
                    .add_backward(&mut reply);
                nc.bwd
                    .as_mut()
                    .expect("server backward hop")
                    .enqueue(QueuedCell {
                        cell: Cell {
                            circ: CircuitId::CONTROL,
                            body: CellBody::Relay(reply),
                        },
                        confirm: None,
                        wrap_for_hop: None,
                    });
                Self::pump_dir(
                    &mut self.net,
                    &mut self.link_sched,
                    &self.router,
                    &self.net_node_of,
                    &mut self.stats,
                    &mut self.payload_pool,
                    ctx,
                    my_net,
                    nc,
                    Direction::Backward,
                );
            }
            RelayCommand::Data => {
                let Some(stream) = app.stream_mut(rc.stream).filter(|s| s.open) else {
                    Self::protocol_error(&mut self.stats, "DATA before BEGIN");
                    return;
                };
                stream.cells_received += 1;
                stream.bytes_received += rc.data.len() as u64;
                // Aggregate arrival counter = fill-pattern index (the
                // counterpart of the client's aggregate send counter).
                let idx = app.cells_received;
                app.cells_received += 1;
                if verify && !verify_fill_pattern(circ, idx, &rc.data) {
                    app.payload_errors += 1;
                    debug_assert!(false, "payload verification failed");
                }
                app.bytes_received += rc.data.len() as u64;
                if app.first_byte_at.is_none() {
                    app.first_byte_at = Some(ctx.now());
                }
                app.last_byte_at = Some(ctx.now());
                // Credit the stream's flow — the accounting that
                // survives circuit churn.
                let sidx = (rc.stream.0 - 1) as usize;
                let info = &self.circuits[circ.index()];
                if let Some(spec) = info.workload.streams.get(sidx) {
                    let flow = &mut self.flows[spec.flow.index()];
                    flow.delivered += rc.data.len() as u64;
                    flow.cells_delivered += 1;
                    if flow.first_byte_at.is_none() {
                        flow.first_byte_at = Some(ctx.now());
                    }
                    debug_assert!(
                        flow.delivered <= flow.requested,
                        "flow over-delivered: duplicated bytes"
                    );
                    if flow.complete() && flow.completed_at.is_none() {
                        flow.completed_at = Some(ctx.now());
                        // Fold the completion into the streaming sketch
                        // the moment it happens — the O(buckets) twin of
                        // the exact per-flow CDF.
                        if let Some(ttlb) = flow.completion_time() {
                            self.completion_sketch.record(ttlb.as_secs_f64());
                        }
                    }
                } else {
                    Self::protocol_error(&mut self.stats, "DATA for stream outside the workload");
                }
                // The payload dies here; recycle its buffer into the pool
                // the client side draws from.
                self.payload_pool.reclaim(rc.data);
            }
            RelayCommand::End => {
                let Some(stream) = app.stream_mut(rc.stream).filter(|s| s.open) else {
                    Self::protocol_error(&mut self.stats, "END before BEGIN");
                    return;
                };
                if !stream.ended {
                    stream.ended = true;
                    app.streams_ended += 1;
                    app.ended = app.streams_ended == app.expected_streams;
                }
            }
            _ => {
                Self::protocol_error(&mut self.stats, "unexpected relay command at server");
            }
        }
    }

    /// The client recognized a backward cell originated by hop `origin`.
    pub(super) fn client_consume_backward(
        &mut self,
        ctx: &mut Context<'_, TorEvent>,
        client: OverlayId,
        circ: CircId,
        local: u32,
        origin: usize,
        rc: RelayCell,
    ) {
        match rc.cmd {
            RelayCommand::Extended => {
                if rc.data.len() != torcell::cell::HANDSHAKE_LEN {
                    Self::protocol_error(&mut self.stats, "malformed EXTENDED payload");
                    return;
                }
                let node = &self.nodes[client.index()];
                let nc = node.circuit_at(local);
                let app = nc.client.as_ref().expect("client app");
                debug_assert_eq!(
                    origin,
                    app.route.len() - 1,
                    "EXTENDED must originate from the current last hop"
                );
                let mut hs = [0u8; torcell::cell::HANDSHAKE_LEN];
                hs.copy_from_slice(&rc.data);
                self.client_advance_build(ctx, client, circ, local, hs);
            }
            RelayCommand::Connected => {
                let node = &mut self.nodes[client.index()];
                let my_net = node.net_node;
                let nc = node.circuit_at_mut(local);
                let app = nc.client.as_mut().expect("client app");
                if app.stage != ClientStage::Established {
                    Self::protocol_error(&mut self.stats, "CONNECTED in wrong stage");
                    return;
                }
                let Some(s) = app.stream_mut(rc.stream) else {
                    Self::protocol_error(&mut self.stats, "CONNECTED for unknown stream");
                    return;
                };
                if s.open || !s.begin_sent {
                    Self::protocol_error(&mut self.stats, "unexpected CONNECTED");
                    return;
                }
                s.open = true;
                if app.connected_at.is_none() {
                    app.connected_at = Some(ctx.now());
                }
                Self::pump_dir(
                    &mut self.net,
                    &mut self.link_sched,
                    &self.router,
                    &self.net_node_of,
                    &mut self.stats,
                    &mut self.payload_pool,
                    ctx,
                    my_net,
                    nc,
                    Direction::Forward,
                );
            }
            RelayCommand::End => {
                // Server-initiated close; nothing to do for bulk transfers.
            }
            _ => {
                Self::protocol_error(&mut self.stats, "unexpected backward relay command");
            }
        }
    }
}
