//! Progress guarantees across circuits sharing a relay. Round-robin
//! scheduling guarantees *service* fairness among backlogged circuits —
//! not equal completion times (a circuit whose window idles yields its
//! slots). These tests pin down what it does guarantee: every circuit
//! progresses, nobody is starved past the capacity bound, and an
//! aggressive sender cannot push a windowed peer beyond that bound.

use circuitstart::prelude::*;
use relaynet::{DirectoryConfig, StarScenario, WorldConfig};

/// A star where every circuit crosses the same single relay — maximal
/// contention at one point.
fn single_relay_star(circuits: usize, file_bytes: u64) -> StarScenario {
    StarScenario {
        circuits,
        relays_per_circuit: 1,
        file_bytes,
        start_jitter_ms: 5.0,
        directory: DirectoryConfig {
            relays: 1,
            bandwidth_mbps: (30.0, 30.1),
            delay_ms: (5.0, 5.0),
        },
        world: WorldConfig::default(),
        ..Default::default()
    }
}

/// Time to push `circuits × file_bytes` of cells through one 30 Mbit/s
/// access direction if it were perfectly scheduled — the fair-share
/// completion bound for the *last* finisher.
fn fair_serial_seconds(circuits: usize, file_bytes: u64) -> f64 {
    let cells = file_bytes.div_ceil(496) * circuits as u64;
    cells as f64 * 512.0 * 8.0 / 30e6
}

#[test]
fn equal_transfers_all_complete_within_the_capacity_bound() {
    let (circuits_n, file) = (6usize, 200_000u64);
    let scenario = single_relay_star(circuits_n, file);
    let (mut sim, circuits) =
        scenario.build(Algorithm::CircuitStart.factory(CcConfig::default()), 3);
    run_to_completion(&mut sim);
    let world = sim.world();
    let bound = fair_serial_seconds(circuits_n, file);
    let times: Vec<f64> = circuits
        .iter()
        .map(|&c| {
            let r = world.result_of(c);
            assert!(r.completed);
            r.transfer_time().unwrap().as_secs_f64()
        })
        .collect();
    let max = times.iter().cloned().fold(0.0, f64::max);
    // The last finisher may not exceed a small multiple of the serial
    // capacity bound. Round-robin wastes no slot while anyone is
    // backlogged, but windowed senders are not always backlogged: under
    // contention the shared standing queue inflates every circuit's RTT
    // measurements, windows clamp conservatively, and the relay idles
    // between bursts — measured slowdowns sit around 2.3–3× serial.
    assert!(
        max <= bound * 3.5,
        "slowest circuit {max:.3} s vs fair-serial bound {bound:.3} s ({times:?})"
    );
    // And early finishers may not be *implausibly* early (they'd have to
    // exceed their own access rate): nobody beats 1/n of the bound.
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        min >= bound / circuits_n as f64,
        "fastest circuit {min:.3} s impossibly fast vs bound {bound:.3} s"
    );
    assert_eq!(world.stats().protocol_errors, 0);
}

#[test]
fn aggressive_window_cannot_push_peers_past_the_capacity_bound() {
    // One JumpStart sender (100-cell burst window) against CircuitStart
    // senders on the same relay. Delay-based senders are known to be
    // out-competed by aggressive ones — the standing queue the aggressor
    // leaves inflates every RTT measurement, so the CircuitStart circuits
    // compensate to small shares (BackTap assumes a *cooperating*
    // deployment, all relays speaking the same protocol). Round-robin
    // still caps the damage: the peers keep progressing and finish within
    // a small multiple of the fair-serial capacity bound, instead of
    // being starved outright as FIFO queueing would allow.
    let (circuits_n, file) = (4usize, 200_000u64);
    let scenario = single_relay_star(circuits_n, file);
    let cc = CcConfig::default();
    let factory: relaynet::CcFactory = Box::new(move |ctx| {
        // Circuit 0 is the aggressor; the rest run CircuitStart.
        let algo = if ctx.circuit.0 == 0 {
            Algorithm::JumpStart(100)
        } else {
            Algorithm::CircuitStart
        };
        match ctx.direction {
            relaynet::Direction::Forward => algo.make_controller(cc),
            relaynet::Direction::Backward => Box::new(backtap::cc::UnlimitedCc),
        }
    });
    let (mut sim, circuits) = scenario.build(factory, 9);
    run_to_completion(&mut sim);
    let world = sim.world();
    let bound = fair_serial_seconds(circuits_n, file);
    for &c in &circuits[1..] {
        let r = world.result_of(c);
        assert!(r.completed, "{c:?} must complete");
        let t = r.transfer_time().unwrap().as_secs_f64();
        assert!(
            t <= bound * 4.0,
            "windowed circuit {c:?} starved beyond bounded degradation: {t:.3} s vs fair-serial {bound:.3} s"
        );
    }
}

#[test]
fn many_small_flows_all_progress() {
    // 12 short transfers over 2 relays: nobody may be locked out — the
    // run quiescing with every transfer complete is the progress proof.
    let scenario = StarScenario {
        circuits: 12,
        relays_per_circuit: 2,
        file_bytes: 30_000,
        directory: DirectoryConfig {
            relays: 2,
            bandwidth_mbps: (25.0, 25.1),
            delay_ms: (4.0, 6.0),
        },
        ..Default::default()
    };
    let (mut sim, circuits) =
        scenario.build(Algorithm::CircuitStart.factory(CcConfig::default()), 21);
    run_to_completion(&mut sim);
    let world = sim.world();
    for c in circuits {
        let r = world.result_of(c);
        assert!(r.completed);
        assert_eq!(r.payload_errors, 0);
    }
    assert_eq!(world.net().total_drops(), 0);
}
