//! The overlay's event type.

use netsim::bandwidth::Bandwidth;
use netsim::link::LinkId;
use netsim::net::NetEvent;

use crate::ids::CircId;

/// Which client-side circuit timer a [`TorEvent::CircTimeout`] carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimerKind {
    /// The build-completion timer: armed when the circuit build starts,
    /// genuine if the circuit is still telescoping when it fires.
    Build,
    /// The liveness timer: armed with a progress snapshot, genuine if
    /// the snapshot has not advanced when it fires.
    Liveness,
}

/// Everything that can happen in a [`crate::network::TorNetwork`].
#[derive(Clone, Copy, Debug)]
pub enum TorEvent {
    /// A link-layer event (serialization finished / frame arrived).
    Net(NetEvent),
    /// A client begins building circuit `0` and transferring once built.
    StartCircuit(CircId),
    /// A client initiates teardown of an established circuit.
    Teardown(CircId),
    /// A staggered stream's arrival offset elapsed: the client issues
    /// the request (BEGIN) on stream index `stream` of `circ`.
    StreamArrival {
        /// The carrying circuit.
        circ: CircId,
        /// Index into the circuit's stream list.
        stream: u32,
    },
    /// A fully torn-down circuit's unfinished flows are re-attached to a
    /// fresh circuit over the same path (churn rebuild).
    Rebuild(CircId),
    /// A consensus epoch boundary: the network applies directory delta
    /// `epoch` (relays join/leave), tearing down circuits that cross a
    /// departing relay so their flows rebuild under the live policy.
    Epoch(u32),
    /// Change a link's rate mid-run (bandwidth-change experiments for the
    /// paper's future-work extension).
    SetLinkRate {
        /// Which link.
        link: LinkId,
        /// The new rate.
        rate: Bandwidth,
    },
    /// A relay crashes: from this instant it silently drops every frame
    /// addressed to it — no DESTROY, no graceful teardown. Clients only
    /// learn of the failure through their own timers.
    RelayCrash {
        /// Directory index of the crashing relay.
        relay: u32,
    },
    /// A client-armed circuit timer fired: if the circuit incarnation it
    /// was armed against is still pending (build timer) or has made no
    /// progress (liveness timer), the client abandons and recovers.
    /// Stale timers — the circuit completed, was torn down, or was
    /// rebuilt into a later incarnation — are no-ops.
    CircTimeout {
        /// The circuit the timer was armed on.
        circ: CircId,
        /// Incarnation the timer belongs to; mismatch means stale.
        incarnation: u32,
        /// Client progress snapshot when the timer was armed (cells
        /// acknowledged end-to-end); equal progress at expiry means the
        /// circuit has stalled.
        progress: u64,
        /// Which timer this is (build completion vs. liveness).
        kind: TimerKind,
    },
}

impl From<NetEvent> for TorEvent {
    fn from(e: NetEvent) -> Self {
        TorEvent::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::link::LinkId;

    #[test]
    fn net_events_embed() {
        // LinkId has a crate-private constructor; round-trip through a Net.
        let mut net: netsim::net::Net<crate::wire::WireFrame> = netsim::net::Net::new();
        let a = net.add_node("a");
        let b = net.add_node("b");
        let link: LinkId = net.add_link(
            a,
            b,
            netsim::link::LinkConfig::new(
                netsim::bandwidth::Bandwidth::from_mbps(1),
                simcore::time::SimDuration::ZERO,
            ),
        );
        let ev: TorEvent = NetEvent::Deliver { link }.into();
        assert!(matches!(ev, TorEvent::Net(NetEvent::Deliver { .. })));
    }
}
