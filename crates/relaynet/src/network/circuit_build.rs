//! Pipeline stage — the circuit control plane.
//!
//! Tor's telescoping build, executed hop by hop: the client CREATEs the
//! first relay, then sends EXTEND relay cells that the current last relay
//! converts into CREATEs toward the next node (answered with CREATED /
//! EXTENDED). Link-local circuit ids are negotiated per connection; onion
//! layers are derived from the CREATE handshakes. Teardown (DESTROY) also
//! lives here: it marks circuit state closed and propagates away from the
//! sender.

use simcore::sim::Context;

use torcell::cell::{Cell, CellBody, RelayCell, RelayCommand, HANDSHAKE_LEN};
use torcell::crypto::{payload_digest, LayerKey, RelayCrypt};
use torcell::ids::{CircuitId, StreamId};

use crate::event::TorEvent;
use crate::ids::{CircId, Direction, OverlayId};
use crate::node::{
    ClientApp, ClientStage, HopCtx, HopDir, NodeCircuit, NodeRole, PendingConfirm, QueuedCell,
    ServerApp,
};

use backtap::hop::HopTransport;

use super::{TorNetwork, DESTROY_REASON_FINISHED};

impl TorNetwork {
    /// Handshake blob: global circuit id (instrumentation channel for the
    /// responder's registry — documented in DESIGN.md §4) plus fresh
    /// random key material.
    pub(super) fn make_handshake(&mut self, circ: CircId) -> [u8; HANDSHAKE_LEN] {
        let mut hs = [0u8; HANDSHAKE_LEN];
        hs[0..4].copy_from_slice(&circ.0.to_be_bytes());
        self.rng.fill_bytes(&mut hs[4..]);
        hs
    }

    /// Launches a circuit (from a [`TorEvent::StartCircuit`]): the client
    /// CREATEs its first hop and the telescope begins.
    pub(super) fn start_circuit(&mut self, ctx: &mut Context<'_, TorEvent>, circ: CircId) {
        let info = &mut self.circuits[circ.index()];
        assert!(info.started_at.is_none(), "circuit started twice");
        info.started_at = Some(ctx.now());
        let path = info.path.clone();
        let file_bytes = info.file_bytes;
        let client_id = path[0];
        let first_hop = path[1];
        let link_id = self.alloc_link_circ_id();
        let hs = self.make_handshake(circ);

        let hop_ctx = HopCtx {
            circuit: circ,
            position: 0,
            direction: Direction::Forward,
        };
        let mut transport = HopTransport::new((self.factory)(&hop_ctx));
        if self.cfg.trace_client_cwnd {
            transport.enable_cwnd_trace(ctx.now());
            transport.enable_rtt_trace();
        }

        let node = &mut self.nodes[client_id.index()];
        debug_assert_eq!(
            node.role,
            NodeRole::Client,
            "circuit must start at a client"
        );
        let mut nc = NodeCircuit::new(circ, 0);
        nc.client = Some(ClientApp::new(path, file_bytes, ctx.now()));
        let mut hopdir = HopDir::new(first_hop, link_id, transport);
        hopdir.enqueue(QueuedCell {
            cell: Cell::create(CircuitId::CONTROL, hs),
            confirm: None,
            wrap_for_hop: None,
        });
        nc.fwd = Some(hopdir);
        let my_net = node.net_node;
        let local = node.add_circuit(nc);
        self.register_route(
            link_id,
            client_id,
            first_hop,
            circ,
            local,
            Direction::Backward,
        );
        let nc = self.nodes[client_id.index()].circuit_at_mut(local);
        Self::pump_dir(
            &mut self.net,
            &mut self.link_sched,
            &self.router,
            &self.net_node_of,
            &mut self.stats,
            &mut self.payload_pool,
            ctx,
            my_net,
            nc,
            Direction::Forward,
        );
    }

    /// CREATE: become part of the circuit; answer CREATED.
    pub(super) fn handle_create(
        &mut self,
        ctx: &mut Context<'_, TorEvent>,
        to: OverlayId,
        from: OverlayId,
        link_id: CircuitId,
        handshake: [u8; HANDSHAKE_LEN],
        hop_seq: u64,
    ) {
        let global = CircId(u32::from_be_bytes(
            handshake[0..4].try_into().expect("4 bytes"),
        ));
        let Some(info) = self.circuits.get(global.index()) else {
            Self::protocol_error(&mut self.stats, "CREATE for unregistered circuit");
            return;
        };
        let Some(position) = info.path.iter().position(|&n| n == to) else {
            Self::protocol_error(&mut self.stats, "CREATE at node not on the path");
            return;
        };
        let is_server = position == info.path.len() - 1;

        let hop_ctx = HopCtx {
            circuit: global,
            position,
            direction: Direction::Backward,
        };
        let transport = HopTransport::new((self.factory)(&hop_ctx));

        let node = &mut self.nodes[to.index()];
        let my_net = node.net_node;
        let mut nc = NodeCircuit::new(global, position);
        nc.pred = Some(from);
        nc.pred_circ_id = Some(link_id);
        nc.crypt = Some(RelayCrypt::new(LayerKey::from_handshake(&handshake)));
        if is_server {
            nc.server = Some(ServerApp::default());
        }
        let mut bwd = HopDir::new(from, link_id, transport);
        bwd.enqueue(QueuedCell {
            cell: Cell::created(CircuitId::CONTROL, handshake),
            confirm: None,
            wrap_for_hop: None,
        });
        nc.bwd = Some(bwd);
        let local = node.add_circuit(nc);
        self.register_route(link_id, to, from, global, local, Direction::Forward);

        // Confirm the consumed CREATE, then answer.
        Self::send_feedback(
            &mut self.net,
            &mut self.link_sched,
            &self.router,
            &self.net_node_of,
            &mut self.stats,
            ctx,
            my_net,
            PendingConfirm {
                neighbor: from,
                circ_id: link_id,
                seq: hop_seq,
            },
        );
        let nc = self.nodes[to.index()].circuit_at_mut(local);
        Self::pump_dir(
            &mut self.net,
            &mut self.link_sched,
            &self.router,
            &self.net_node_of,
            &mut self.stats,
            &mut self.payload_pool,
            ctx,
            my_net,
            nc,
            Direction::Backward,
        );
    }

    /// CREATED: the hop we asked for exists. At the client this advances
    /// the build; at a relay it answers a pending EXTEND with EXTENDED.
    pub(super) fn handle_created(
        &mut self,
        ctx: &mut Context<'_, TorEvent>,
        to: OverlayId,
        from: OverlayId,
        link_id: CircuitId,
        handshake: [u8; HANDSHAKE_LEN],
        hop_seq: u64,
    ) {
        let Some((global, local, _)) = self.route_of(to, from, link_id) else {
            Self::protocol_error(&mut self.stats, "CREATED on unknown route");
            return;
        };
        let my_net = self.nodes[to.index()].net_node;
        Self::send_feedback(
            &mut self.net,
            &mut self.link_sched,
            &self.router,
            &self.net_node_of,
            &mut self.stats,
            ctx,
            my_net,
            PendingConfirm {
                neighbor: from,
                circ_id: link_id,
                seq: hop_seq,
            },
        );
        let node = &mut self.nodes[to.index()];
        let nc = node.circuit_at_mut(local);
        if nc.client.is_some() {
            self.client_advance_build(ctx, to, global, local, handshake);
        } else {
            // A relay completed an EXTEND: report EXTENDED to the client.
            let Some(echo) = nc.pending_extend.take() else {
                Self::protocol_error(&mut self.stats, "CREATED without pending EXTEND");
                return;
            };
            debug_assert_eq!(echo, handshake, "CREATED must echo the extend handshake");
            let mut rc = RelayCell {
                cmd: RelayCommand::Extended,
                stream: StreamId::CIRCUIT,
                digest: payload_digest(&echo),
                data: echo.to_vec(),
            };
            nc.crypt
                .as_mut()
                .expect("relay has crypt state")
                .add_backward(&mut rc);
            let Some(bwd) = nc.bwd.as_mut() else {
                Self::protocol_error(&mut self.stats, "relay without backward hop");
                return;
            };
            bwd.enqueue(QueuedCell {
                cell: Cell {
                    circ: CircuitId::CONTROL,
                    body: CellBody::Relay(rc),
                },
                confirm: None,
                wrap_for_hop: None,
            });
            Self::pump_dir(
                &mut self.net,
                &mut self.link_sched,
                &self.router,
                &self.net_node_of,
                &mut self.stats,
                &mut self.payload_pool,
                ctx,
                my_net,
                nc,
                Direction::Backward,
            );
        }
    }

    /// The client gained a key for one more hop: extend further, or open
    /// the stream if the circuit is complete.
    pub(super) fn client_advance_build(
        &mut self,
        ctx: &mut Context<'_, TorEvent>,
        client: OverlayId,
        circ: CircId,
        local: u32,
        handshake: [u8; HANDSHAKE_LEN],
    ) {
        // Pre-generate randomness before borrowing node state.
        let next_handshake = self.make_handshake(circ);
        let node = &mut self.nodes[client.index()];
        let my_net = node.net_node;
        let nc = node.circuit_at_mut(local);
        let app = nc.client.as_mut().expect("client app exists");
        app.route.push_layer(LayerKey::from_handshake(&handshake));
        let built = app.route.len();
        let needed = app.path.len() - 1;
        let qc = if built < needed {
            let target = app.path[built + 1];
            app.stage = ClientStage::Building { next: built + 1 };
            let mut data = Vec::with_capacity(4 + HANDSHAKE_LEN);
            data.extend_from_slice(&target.0.to_be_bytes());
            data.extend_from_slice(&next_handshake);
            let rc = RelayCell {
                cmd: RelayCommand::Extend,
                stream: StreamId::CIRCUIT,
                digest: payload_digest(&data),
                data,
            };
            QueuedCell {
                cell: Cell {
                    circ: CircuitId::CONTROL,
                    body: CellBody::Relay(rc),
                },
                confirm: None,
                wrap_for_hop: Some(built - 1),
            }
        } else {
            app.stage = ClientStage::Opening;
            let data = b"server:443".to_vec();
            let rc = RelayCell {
                cmd: RelayCommand::Begin,
                stream: StreamId(1),
                digest: payload_digest(&data),
                data,
            };
            QueuedCell {
                cell: Cell {
                    circ: CircuitId::CONTROL,
                    body: CellBody::Relay(rc),
                },
                confirm: None,
                wrap_for_hop: Some(needed - 1),
            }
        };
        nc.fwd.as_mut().expect("client forward hop").enqueue(qc);
        Self::pump_dir(
            &mut self.net,
            &mut self.link_sched,
            &self.router,
            &self.net_node_of,
            &mut self.stats,
            &mut self.payload_pool,
            ctx,
            my_net,
            nc,
            Direction::Forward,
        );
    }

    /// A relay recognized a forward cell: only EXTEND is valid here —
    /// convert it into a CREATE toward the next node.
    pub(super) fn relay_consume(
        &mut self,
        ctx: &mut Context<'_, TorEvent>,
        relay: OverlayId,
        circ: CircId,
        local: u32,
        rc: RelayCell,
    ) {
        if rc.cmd != RelayCommand::Extend {
            Self::protocol_error(&mut self.stats, "relay consumed a non-EXTEND cell");
            return;
        }
        if rc.data.len() != 4 + HANDSHAKE_LEN {
            Self::protocol_error(&mut self.stats, "malformed EXTEND payload");
            return;
        }
        let target = OverlayId(u32::from_be_bytes(
            rc.data[0..4].try_into().expect("4 bytes"),
        ));
        if target.index() >= self.nodes.len() {
            Self::protocol_error(&mut self.stats, "EXTEND to unknown node");
            return;
        }
        let mut hs = [0u8; HANDSHAKE_LEN];
        hs.copy_from_slice(&rc.data[4..]);
        let new_id = self.alloc_link_circ_id();

        let node = &mut self.nodes[relay.index()];
        let my_net = node.net_node;
        let position = node.circuit_at(local).position;
        self.register_route(new_id, relay, target, circ, local, Direction::Backward);
        let hop_ctx = HopCtx {
            circuit: circ,
            position,
            direction: Direction::Forward,
        };
        let transport = HopTransport::new((self.factory)(&hop_ctx));
        let nc = self.nodes[relay.index()].circuit_at_mut(local);
        nc.pending_extend = Some(hs);
        let mut fwd = HopDir::new(target, new_id, transport);
        fwd.enqueue(QueuedCell {
            cell: Cell::create(CircuitId::CONTROL, hs),
            confirm: None,
            wrap_for_hop: None,
        });
        nc.fwd = Some(fwd);
        Self::pump_dir(
            &mut self.net,
            &mut self.link_sched,
            &self.router,
            &self.net_node_of,
            &mut self.stats,
            &mut self.payload_pool,
            ctx,
            my_net,
            nc,
            Direction::Forward,
        );
    }

    /// DESTROY: mark the circuit closed and propagate.
    pub(super) fn handle_destroy(
        &mut self,
        ctx: &mut Context<'_, TorEvent>,
        to: OverlayId,
        from: OverlayId,
        link_id: CircuitId,
        reason: u8,
        hop_seq: u64,
    ) {
        let Some((_global, local, _)) = self.route_of(to, from, link_id) else {
            Self::protocol_error(&mut self.stats, "DESTROY on unknown route");
            return;
        };
        let my_net = self.nodes[to.index()].net_node;
        Self::send_feedback(
            &mut self.net,
            &mut self.link_sched,
            &self.router,
            &self.net_node_of,
            &mut self.stats,
            ctx,
            my_net,
            PendingConfirm {
                neighbor: from,
                circ_id: link_id,
                seq: hop_seq,
            },
        );
        let node = &mut self.nodes[to.index()];
        let nc = node.circuit_at_mut(local);
        if nc.closed {
            return;
        }
        nc.closed = true;
        // Propagate away from the sender.
        let propagate_dir = match nc.direction_toward(from) {
            // The hop *toward* the sender is where it came from; continue
            // in the other direction.
            Some(Direction::Forward) => Direction::Backward,
            Some(Direction::Backward) => Direction::Forward,
            None => return,
        };
        let hopdir = match propagate_dir {
            Direction::Forward => nc.fwd.as_mut(),
            Direction::Backward => nc.bwd.as_mut(),
        };
        if let Some(hd) = hopdir {
            hd.enqueue(QueuedCell {
                cell: Cell::destroy(CircuitId::CONTROL, reason),
                confirm: None,
                wrap_for_hop: None,
            });
            Self::pump_dir(
                &mut self.net,
                &mut self.link_sched,
                &self.router,
                &self.net_node_of,
                &mut self.stats,
                &mut self.payload_pool,
                ctx,
                my_net,
                nc,
                propagate_dir,
            );
        }
    }

    /// Client-initiated teardown (from a [`TorEvent::Teardown`]).
    pub(super) fn teardown(&mut self, ctx: &mut Context<'_, TorEvent>, circ: CircId) {
        let client_id = self.circuits[circ.index()].path[0];
        let node = &mut self.nodes[client_id.index()];
        let my_net = node.net_node;
        let Some(nc) = node.circuit_mut(circ) else {
            return;
        };
        if nc.closed {
            return;
        }
        nc.closed = true;
        if let Some(fwd) = nc.fwd.as_mut() {
            fwd.enqueue(QueuedCell {
                cell: Cell::destroy(CircuitId::CONTROL, DESTROY_REASON_FINISHED),
                confirm: None,
                wrap_for_hop: None,
            });
            Self::pump_dir(
                &mut self.net,
                &mut self.link_sched,
                &self.router,
                &self.net_node_of,
                &mut self.stats,
                &mut self.payload_pool,
                ctx,
                my_net,
                nc,
                Direction::Forward,
            );
        }
    }
}
