//! The network: nodes, directed links, and the transmission state machine.
//!
//! [`Net`] is *not* a [`simcore::World`] by itself — it is a component the
//! world embeds. The world forwards the two network events to
//! [`Net::on_tx_complete`] / [`Net::take_delivered`] and handles delivered
//! frames itself (routing is a higher-layer concern). This keeps `Net`
//! reusable under any event enum via `E: From<NetEvent>`.
//!
//! # Timing model
//!
//! For a frame of `b` bytes sent at time `t` on an idle link with rate `r`
//! and propagation delay `d`:
//!
//! * serialization finishes at `t + b·8/r`  → [`NetEvent::TxComplete`]
//! * delivery happens at   `t + b·8/r + d`  → [`NetEvent::Deliver`]
//!
//! If the link is busy, the frame waits in the drop-tail egress queue.
//! This is exactly ns-3's point-to-point model.

use simcore::sim::Context;
use simcore::time::SimTime;

use crate::bandwidth::Bandwidth;
use crate::frame::Frame;
use crate::link::{LinkConfig, LinkId, LinkState, LinkStats, Queued};

/// Identifies a node within one [`Net`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Events produced by the network layer. Embed them in the world's event
/// enum with a `From<NetEvent>` impl.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NetEvent {
    /// The frame at the head of `link`'s transmitter finished serializing.
    TxComplete {
        /// Which link.
        link: LinkId,
    },
    /// The oldest in-flight frame on `link` reached the far end. Call
    /// [`Net::take_delivered`] to obtain it.
    Deliver {
        /// Which link.
        link: LinkId,
    },
}

/// Result of [`Net::send`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SendOutcome {
    /// The frame was accepted (queued or started transmitting).
    Accepted,
    /// The egress queue was full; the frame was dropped and returned.
    Dropped,
}

/// A directed graph of nodes and rate/delay links carrying frames of type
/// `F`.
///
/// # Examples
///
/// ```
/// use netsim::prelude::*;
/// use simcore::prelude::*;
///
/// struct W { net: Net<RawFrame>, got: Vec<u64> }
/// impl World for W {
///     type Event = NetEvent;
///     fn handle(&mut self, ctx: &mut Context<'_, NetEvent>, ev: NetEvent) {
///         match ev {
///             NetEvent::TxComplete { link } => self.net.on_tx_complete(ctx, link),
///             NetEvent::Deliver { link } => {
///                 let f = self.net.take_delivered(link);
///                 self.got.push(f.tag);
///             }
///         }
///     }
/// }
///
/// let mut net = Net::new();
/// let a = net.add_node("a");
/// let b = net.add_node("b");
/// let ab = net.add_link(a, b, LinkConfig::new(Bandwidth::from_mbps(8), SimDuration::from_millis(1)));
///
/// let mut sim = Simulator::new(W { net, got: vec![] });
/// // send two 1000-byte frames back to back at t=0
/// // (1000 B at 8 Mbit/s = 1 ms serialization each)
/// let w = sim.world_mut();
/// // scheduling via a setup context is not needed; send directly pre-run:
/// // frames go out at t=0 because the link is idle.
/// // (Normally sends happen inside handlers.)
/// # let _ = ab;
/// ```
pub struct Net<F: Frame> {
    links: Vec<LinkState<F>>,
    link_ends: Vec<(NodeId, NodeId)>,
    node_names: Vec<String>,
}

impl<F: Frame> Default for Net<F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<F: Frame> Net<F> {
    /// Creates an empty network.
    pub fn new() -> Self {
        Net {
            links: Vec::new(),
            link_ends: Vec::new(),
            node_names: Vec::new(),
        }
    }

    /// Adds a node; `name` is used in diagnostics only.
    pub fn add_node(&mut self, name: &str) -> NodeId {
        let id = NodeId(u32::try_from(self.node_names.len()).expect("too many nodes"));
        self.node_names.push(name.to_string());
        id
    }

    /// Adds a directed link `from → to`.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, cfg: LinkConfig) -> LinkId {
        assert!(from.index() < self.node_names.len(), "unknown source node");
        assert!(
            to.index() < self.node_names.len(),
            "unknown destination node"
        );
        assert_ne!(from, to, "self-loop links are not supported");
        let id = LinkId(u32::try_from(self.links.len()).expect("too many links"));
        self.links.push(LinkState::new(cfg));
        self.link_ends.push((from, to));
        id
    }

    /// Adds a duplex connection as two symmetric simplex links, returning
    /// `(forward, reverse)`.
    pub fn add_duplex(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) -> (LinkId, LinkId) {
        (self.add_link(a, b, cfg), self.add_link(b, a, cfg))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of (simplex) links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Diagnostic name of a node.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.index()]
    }

    /// The `(source, destination)` nodes of a link.
    pub fn link_ends(&self, link: LinkId) -> (NodeId, NodeId) {
        self.link_ends[link.index()]
    }

    /// The node a link delivers to.
    pub fn link_dst(&self, link: LinkId) -> NodeId {
        self.link_ends[link.index()].1
    }

    /// The node a link transmits from.
    pub fn link_src(&self, link: LinkId) -> NodeId {
        self.link_ends[link.index()].0
    }

    /// The static configuration of a link.
    pub fn link_config(&self, link: LinkId) -> &LinkConfig {
        &self.links[link.index()].cfg
    }

    /// Counters for a link.
    pub fn stats(&self, link: LinkId) -> &LinkStats {
        &self.links[link.index()].stats
    }

    /// Frames currently waiting in the egress queue (excluding the one
    /// serializing).
    pub fn queue_len(&self, link: LinkId) -> usize {
        self.links[link.index()].queue_len()
    }

    /// Bytes currently waiting in the egress queue.
    pub fn queue_bytes(&self, link: LinkId) -> u64 {
        self.links[link.index()].queue_bytes()
    }

    /// Whether the link's transmitter is currently serializing a frame.
    pub fn is_busy(&self, link: LinkId) -> bool {
        self.links[link.index()].is_busy()
    }

    /// Sum of dropped frames over all links — experiments that rely on
    /// backpressure assert this stays zero.
    pub fn total_drops(&self) -> u64 {
        self.links.iter().map(|l| l.stats.frames_dropped).sum()
    }

    /// Hands a frame to a link for transmission at the current time.
    ///
    /// If the transmitter is idle the frame starts serializing immediately;
    /// otherwise it joins the egress queue (or is dropped if the queue is
    /// full).
    pub fn send<E: From<NetEvent>>(
        &mut self,
        ctx: &mut Context<'_, E>,
        link: LinkId,
        frame: F,
    ) -> SendOutcome {
        let now = ctx.now();
        let state = &mut self.links[link.index()];
        let size = frame.wire_size();
        if state.transmitting.is_none() {
            debug_assert!(
                state.queue.is_empty(),
                "idle transmitter with non-empty queue"
            );
            Self::begin_tx(state, link, frame, now, ctx);
            state.stats.frames_accepted += 1;
            return SendOutcome::Accepted;
        }
        if !state.queue_has_room(size) {
            state.stats.frames_dropped += 1;
            state.stats.bytes_dropped += u64::from(size);
            return SendOutcome::Dropped;
        }
        state.queue.push_back(Queued {
            frame,
            enqueued_at: now,
        });
        state.queue_bytes += u64::from(size);
        state.stats.frames_accepted += 1;
        state.stats.queue_hwm_frames = state.stats.queue_hwm_frames.max(state.queue.len());
        state.stats.queue_hwm_bytes = state.stats.queue_hwm_bytes.max(state.queue_bytes);
        SendOutcome::Accepted
    }

    /// Changes a link's rate at runtime (used by mid-flow bandwidth-change
    /// experiments). Takes effect from the next frame that starts
    /// serializing; the frame currently on the wire is unaffected.
    pub fn set_link_rate(&mut self, link: LinkId, rate: Bandwidth) {
        self.links[link.index()].cfg.rate = rate;
    }

    /// The frame currently being serialized on `link`, if any. On a
    /// [`NetEvent::TxComplete`] this is the frame that just finished —
    /// overlays use it to act at the exact moment of transmission (e.g.
    /// emitting forwarding feedback) before calling
    /// [`Net::on_tx_complete`].
    pub fn transmitting(&self, link: LinkId) -> Option<&F> {
        self.links[link.index()].transmitting.as_ref()
    }

    /// Mutable access to the frame currently being serialized (e.g. to
    /// detach bookkeeping that must not travel past this hop).
    pub fn transmitting_mut(&mut self, link: LinkId) -> Option<&mut F> {
        self.links[link.index()].transmitting.as_mut()
    }

    /// Handles [`NetEvent::TxComplete`]: moves the serialized frame into
    /// the propagation stage and starts the next queued frame, if any.
    pub fn on_tx_complete<E: From<NetEvent>>(&mut self, ctx: &mut Context<'_, E>, link: LinkId) {
        let now = ctx.now();
        let state = &mut self.links[link.index()];
        let frame = state
            .transmitting
            .take()
            .expect("TxComplete on a link that is not transmitting");
        let size = frame.wire_size();
        state.stats.frames_sent += 1;
        state.stats.bytes_sent += u64::from(size);
        state.in_flight.push_back(frame);
        ctx.schedule_in(state.cfg.delay, NetEvent::Deliver { link }.into());
        if let Some(next) = state.queue.pop_front() {
            state.queue_bytes -= u64::from(next.frame.wire_size());
            let wait = now.saturating_duration_since(next.enqueued_at);
            state.stats.queue_wait_total += wait;
            state.stats.queue_wait_max = state.stats.queue_wait_max.max(wait);
            Self::begin_tx(state, link, next.frame, now, ctx);
        }
    }

    /// Handles [`NetEvent::Deliver`]: removes and returns the frame that
    /// just arrived at [`Net::link_dst`].
    ///
    /// # Panics
    ///
    /// Panics if no frame is in flight — that indicates a double-handled
    /// event, which is always a bug.
    pub fn take_delivered(&mut self, link: LinkId) -> F {
        let state = &mut self.links[link.index()];
        let frame = state
            .in_flight
            .pop_front()
            .expect("Deliver on a link with nothing in flight");
        state.stats.frames_delivered += 1;
        frame
    }

    fn begin_tx<E: From<NetEvent>>(
        state: &mut LinkState<F>,
        link: LinkId,
        frame: F,
        _now: SimTime,
        ctx: &mut Context<'_, E>,
    ) {
        let tx_time = state.cfg.rate.transmission_time(frame.wire_size());
        state.stats.busy_time += tx_time;
        state.transmitting = Some(frame);
        ctx.schedule_in(tx_time, NetEvent::TxComplete { link }.into());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::Bandwidth;
    use crate::frame::RawFrame;
    use crate::link::QueueLimit;
    use simcore::prelude::*;

    /// Test world: one Net plus a delivery log and an outbox of
    /// (time, link, frame) sends injected via timer events.
    struct W {
        net: Net<RawFrame>,
        delivered: Vec<(SimTime, u64)>,
        sends: Vec<(SimTime, LinkId, RawFrame)>,
        outcomes: Vec<SendOutcome>,
    }

    enum Ev {
        Net(NetEvent),
        DoSend(usize),
    }
    impl From<NetEvent> for Ev {
        fn from(e: NetEvent) -> Self {
            Ev::Net(e)
        }
    }

    impl World for W {
        type Event = Ev;
        fn handle(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
            match ev {
                Ev::Net(NetEvent::TxComplete { link }) => self.net.on_tx_complete(ctx, link),
                Ev::Net(NetEvent::Deliver { link }) => {
                    let f = self.net.take_delivered(link);
                    self.delivered.push((ctx.now(), f.tag));
                }
                Ev::DoSend(i) => {
                    let (_, link, frame) = self.sends[i];
                    let outcome = self.net.send(ctx, link, frame);
                    self.outcomes.push(outcome);
                }
            }
        }
    }

    /// Builds a world with a single a→b link and a list of scheduled sends.
    fn run_world(
        cfg: LinkConfig,
        sends: Vec<(SimTime, RawFrame)>,
    ) -> (Vec<(SimTime, u64)>, Vec<SendOutcome>, Net<RawFrame>) {
        let mut net = Net::new();
        let a = net.add_node("a");
        let b = net.add_node("b");
        let link = net.add_link(a, b, cfg);
        let sends: Vec<(SimTime, LinkId, RawFrame)> =
            sends.into_iter().map(|(t, f)| (t, link, f)).collect();
        let mut sim = Simulator::new(W {
            net,
            delivered: vec![],
            sends: sends.clone(),
            outcomes: vec![],
        });
        for (i, &(t, _, _)) in sends.iter().enumerate() {
            sim.schedule_at(t, Ev::DoSend(i));
        }
        sim.run();
        let w = sim.into_world();
        (w.delivered, w.outcomes, w.net)
    }

    fn frame(bytes: u32, tag: u64) -> RawFrame {
        RawFrame { bytes, tag }
    }

    #[test]
    fn single_frame_timing() {
        // 1000 B at 8 Mbit/s = 1 ms serialization, +2 ms propagation.
        let cfg = LinkConfig::new(Bandwidth::from_mbps(8), SimDuration::from_millis(2));
        let (delivered, outcomes, net) = run_world(cfg, vec![(SimTime::ZERO, frame(1000, 1))]);
        assert_eq!(outcomes, vec![SendOutcome::Accepted]);
        assert_eq!(delivered, vec![(SimTime::from_millis(3), 1)]);
        let link = LinkId(0);
        assert_eq!(net.stats(link).frames_sent, 1);
        assert_eq!(net.stats(link).bytes_sent, 1000);
        assert_eq!(net.stats(link).frames_delivered, 1);
    }

    #[test]
    fn back_to_back_frames_serialize_sequentially() {
        // Two 1000 B frames sent at t=0: second finishes serializing at 2ms,
        // arrives at 2ms+delay.
        let cfg = LinkConfig::new(Bandwidth::from_mbps(8), SimDuration::from_millis(5));
        let (delivered, _, _) = run_world(
            cfg,
            vec![
                (SimTime::ZERO, frame(1000, 1)),
                (SimTime::ZERO, frame(1000, 2)),
            ],
        );
        assert_eq!(
            delivered,
            vec![(SimTime::from_millis(6), 1), (SimTime::from_millis(7), 2)]
        );
    }

    #[test]
    fn delivery_preserves_fifo_order() {
        let cfg = LinkConfig::new(Bandwidth::from_mbps(8), SimDuration::from_millis(1));
        let sends = (0..10)
            .map(|i| (SimTime::from_micros(i * 10), frame(100, i)))
            .collect();
        let (delivered, _, _) = run_world(cfg, sends);
        let tags: Vec<u64> = delivered.iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn idle_gap_restarts_transmitter() {
        let cfg = LinkConfig::new(Bandwidth::from_mbps(8), SimDuration::ZERO);
        let (delivered, _, _) = run_world(
            cfg,
            vec![
                (SimTime::ZERO, frame(1000, 1)),            // 0..1ms
                (SimTime::from_millis(10), frame(1000, 2)), // 10..11ms
            ],
        );
        assert_eq!(
            delivered,
            vec![(SimTime::from_millis(1), 1), (SimTime::from_millis(11), 2)]
        );
    }

    #[test]
    fn queue_limit_drops_excess() {
        let cfg = LinkConfig {
            rate: Bandwidth::from_mbps(8),
            delay: SimDuration::ZERO,
            queue: QueueLimit::Frames(1),
        };
        // Three sends at t=0: #1 transmits, #2 queues, #3 dropped.
        let (delivered, outcomes, net) = run_world(
            cfg,
            vec![
                (SimTime::ZERO, frame(1000, 1)),
                (SimTime::ZERO, frame(1000, 2)),
                (SimTime::ZERO, frame(1000, 3)),
            ],
        );
        assert_eq!(
            outcomes,
            vec![
                SendOutcome::Accepted,
                SendOutcome::Accepted,
                SendOutcome::Dropped
            ]
        );
        let tags: Vec<u64> = delivered.iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, vec![1, 2]);
        assert_eq!(net.stats(LinkId(0)).frames_dropped, 1);
        assert_eq!(net.stats(LinkId(0)).bytes_dropped, 1000);
        assert_eq!(net.total_drops(), 1);
    }

    #[test]
    fn byte_queue_limit() {
        let cfg = LinkConfig {
            rate: Bandwidth::from_mbps(8),
            delay: SimDuration::ZERO,
            queue: QueueLimit::Bytes(1500),
        };
        let (_, outcomes, _) = run_world(
            cfg,
            vec![
                (SimTime::ZERO, frame(1000, 1)), // transmitting
                (SimTime::ZERO, frame(1000, 2)), // queued (1000 <= 1500)
                (SimTime::ZERO, frame(600, 3)),  // 1600 > 1500 → dropped
                (SimTime::ZERO, frame(500, 4)),  // exactly 1500 → queued
            ],
        );
        assert_eq!(
            outcomes,
            vec![
                SendOutcome::Accepted,
                SendOutcome::Accepted,
                SendOutcome::Dropped,
                SendOutcome::Accepted
            ]
        );
    }

    #[test]
    fn queue_wait_statistics() {
        let cfg = LinkConfig::new(Bandwidth::from_mbps(8), SimDuration::ZERO);
        // Frame 2 waits exactly 1 ms (while frame 1 serializes).
        let (_, _, net) = run_world(
            cfg,
            vec![
                (SimTime::ZERO, frame(1000, 1)),
                (SimTime::ZERO, frame(1000, 2)),
            ],
        );
        let s = net.stats(LinkId(0));
        assert_eq!(s.queue_wait_max, SimDuration::from_millis(1));
        // Only sent frames count for the mean; 2 sent, total wait 1 ms.
        assert_eq!(s.mean_queue_wait(), SimDuration::from_micros(500));
        assert_eq!(s.queue_hwm_frames, 1);
        assert_eq!(s.queue_hwm_bytes, 1000);
    }

    #[test]
    fn busy_time_and_utilization() {
        let cfg = LinkConfig::new(Bandwidth::from_mbps(8), SimDuration::ZERO);
        let (_, _, net) = run_world(
            cfg,
            vec![
                (SimTime::ZERO, frame(1000, 1)),
                (SimTime::from_millis(3), frame(1000, 2)),
            ],
        );
        let s = net.stats(LinkId(0));
        assert_eq!(s.busy_time, SimDuration::from_millis(2));
        assert!((s.utilization(SimTime::from_millis(4)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn topology_accessors() {
        let mut net: Net<RawFrame> = Net::new();
        let a = net.add_node("alpha");
        let b = net.add_node("beta");
        let (ab, ba) = net.add_duplex(
            a,
            b,
            LinkConfig::new(Bandwidth::from_mbps(1), SimDuration::ZERO),
        );
        assert_eq!(net.node_count(), 2);
        assert_eq!(net.link_count(), 2);
        assert_eq!(net.node_name(a), "alpha");
        assert_eq!(net.link_ends(ab), (a, b));
        assert_eq!(net.link_src(ba), b);
        assert_eq!(net.link_dst(ba), a);
        assert_eq!(net.link_config(ab).rate, Bandwidth::from_mbps(1));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let mut net: Net<RawFrame> = Net::new();
        let a = net.add_node("a");
        net.add_link(
            a,
            a,
            LinkConfig::new(Bandwidth::from_mbps(1), SimDuration::ZERO),
        );
    }

    #[test]
    #[should_panic(expected = "nothing in flight")]
    fn double_delivery_panics() {
        let mut net: Net<RawFrame> = Net::new();
        let a = net.add_node("a");
        let b = net.add_node("b");
        let l = net.add_link(
            a,
            b,
            LinkConfig::new(Bandwidth::from_mbps(1), SimDuration::ZERO),
        );
        let _ = net.take_delivered(l);
    }

    #[test]
    fn set_link_rate_affects_next_transmission() {
        // First frame at 8 Mbit/s (1 ms), then slow the link to 4 Mbit/s
        // (2 ms) before the second frame is sent.
        struct W2 {
            net: Net<RawFrame>,
            delivered: Vec<(SimTime, u64)>,
        }
        enum Ev2 {
            Net(NetEvent),
            Send(u64),
            Slow,
        }
        impl From<NetEvent> for Ev2 {
            fn from(e: NetEvent) -> Self {
                Ev2::Net(e)
            }
        }
        impl World for W2 {
            type Event = Ev2;
            fn handle(&mut self, ctx: &mut Context<'_, Ev2>, ev: Ev2) {
                match ev {
                    Ev2::Net(NetEvent::TxComplete { link }) => self.net.on_tx_complete(ctx, link),
                    Ev2::Net(NetEvent::Deliver { link }) => {
                        let f = self.net.take_delivered(link);
                        self.delivered.push((ctx.now(), f.tag));
                    }
                    Ev2::Send(tag) => {
                        self.net.send(ctx, LinkId(0), frame(1000, tag));
                    }
                    Ev2::Slow => self.net.set_link_rate(LinkId(0), Bandwidth::from_mbps(4)),
                }
            }
        }
        let mut net = Net::new();
        let a = net.add_node("a");
        let b = net.add_node("b");
        net.add_link(
            a,
            b,
            LinkConfig::new(Bandwidth::from_mbps(8), SimDuration::ZERO),
        );
        let mut sim = Simulator::new(W2 {
            net,
            delivered: vec![],
        });
        sim.schedule_at(SimTime::ZERO, Ev2::Send(1));
        sim.schedule_at(SimTime::from_millis(5), Ev2::Slow);
        sim.schedule_at(SimTime::from_millis(10), Ev2::Send(2));
        sim.run();
        assert_eq!(
            sim.world().delivered,
            vec![(SimTime::from_millis(1), 1), (SimTime::from_millis(12), 2)]
        );
    }

    #[test]
    fn zero_delay_zero_size_delivers_same_instant() {
        let cfg = LinkConfig::new(Bandwidth::from_mbps(8), SimDuration::ZERO);
        let (delivered, _, _) = run_world(cfg, vec![(SimTime::ZERO, frame(0, 9))]);
        assert_eq!(delivered, vec![(SimTime::ZERO, 9)]);
    }
}
