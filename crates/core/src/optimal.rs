//! The paper's analytical baseline: the optimal congestion window of a
//! multi-hop source.
//!
//! # Model
//!
//! A circuit crosses links `L0 … L_{n−1}` (client → … → server), link `i`
//! having rate `rᵢ` and one-way propagation delay `dᵢ`. Cells are `C`
//! bytes, feedback frames `F` bytes. Store-and-forward relays emit
//! feedback the instant they forward (or consume) a cell.
//!
//! **Per-hop base RTT.** A cell released at hop `i` on an idle path is
//! fully received by the successor after `8C/rᵢ + dᵢ`. The successor's
//! feedback fires the instant the cell is physically *forwarded* — i.e.
//! when it finishes serializing onto link `i+1` (`8C/rᵢ₊₁` later) — and
//! the feedback frame takes `8F/rᵢ + dᵢ` back. An endpoint consumes
//! instead of forwarding, so the last hop has no `rᵢ₊₁` term:
//!
//! ```text
//! RTTᵢ = 8·(C + F)/rᵢ + 2·dᵢ + 8·C/rᵢ₊₁   (i < n−1)
//! RTTᵢ = 8·(C + F)/rᵢ + 2·dᵢ              (i = n−1)
//! ```
//!
//! **Optimal window.** In steady state every hop of a single circuit
//! carries the bottleneck rate `r_b = min rᵢ`. By Little's law, a hop
//! sustains throughput `Wᵢ·C/RTTᵢ` while its window `Wᵢ` keeps the
//! feedback loop full, so the *minimal fully-utilizing* window — the
//! quantity CircuitStart's overshoot compensation estimates — is
//!
//! ```text
//! Wᵢ* = (r_b/8) · RTTᵢ / C   cells.
//! ```
//!
//! Anything larger only builds queues (raising `diff` past γ); anything
//! smaller starves the bottleneck. The source's `W₀*` is the dashed line
//! in Figure 1's upper panels. The model's knee property is verified
//! against simulation in `tests/optimal_model.rs`.

use netsim::bandwidth::Bandwidth;
use netsim::link::LinkConfig;
use simcore::time::SimDuration;
use torcell::cell::{CELL_LEN, FEEDBACK_WIRE_LEN, RELAY_DATA_MAX};

/// One link of the modelled path.
#[derive(Clone, Copy, Debug)]
pub struct LinkModel {
    /// Link rate.
    pub rate: Bandwidth,
    /// One-way propagation delay.
    pub delay: SimDuration,
}

/// Closed-form properties of a multi-hop path.
#[derive(Clone, Debug)]
pub struct PathModel {
    links: Vec<LinkModel>,
    cell_bytes: u32,
    feedback_bytes: u32,
}

impl PathModel {
    /// Builds a model with the overlay's wire sizes (512-byte cells,
    /// 20-byte feedback).
    ///
    /// # Panics
    ///
    /// Panics if `links` is empty.
    pub fn new(links: Vec<LinkModel>) -> PathModel {
        assert!(!links.is_empty(), "a path needs at least one link");
        PathModel {
            links,
            cell_bytes: CELL_LEN as u32,
            feedback_bytes: FEEDBACK_WIRE_LEN as u32,
        }
    }

    /// Builds the model from the hop configs a
    /// [`relaynet::PathScenario`] uses, so experiment and model always
    /// agree on parameters.
    pub fn from_hops(hops: &[LinkConfig]) -> PathModel {
        PathModel::new(
            hops.iter()
                .map(|h| LinkModel {
                    rate: h.rate,
                    delay: h.delay,
                })
                .collect(),
        )
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// `false` by construction.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// The links.
    pub fn links(&self) -> &[LinkModel] {
        &self.links
    }

    /// Index of the slowest link (first on ties).
    pub fn bottleneck_index(&self) -> usize {
        let mut best = 0;
        for (i, l) in self.links.iter().enumerate() {
            if l.rate < self.links[best].rate {
                best = i;
            }
        }
        best
    }

    /// Rate of the slowest link.
    pub fn bottleneck_rate(&self) -> Bandwidth {
        self.links[self.bottleneck_index()].rate
    }

    /// The idle-path feedback RTT of hop `i` (see the module docs for the
    /// formula; the successor's forwarding serialization counts for all
    /// but the final, consuming hop).
    pub fn hop_base_rtt(&self, i: usize) -> SimDuration {
        let l = &self.links[i];
        let mut rtt = l.rate.transmission_time(self.cell_bytes)
            + l.rate.transmission_time(self.feedback_bytes)
            + l.delay
            + l.delay;
        if let Some(next) = self.links.get(i + 1) {
            rtt += next.rate.transmission_time(self.cell_bytes);
        }
        rtt
    }

    /// The minimal fully-utilizing window of hop `i`, in cells (may be
    /// fractional; senders round up).
    pub fn optimal_cwnd_cells(&self, i: usize) -> f64 {
        let r_b = self.bottleneck_rate().bytes_per_sec_f64();
        r_b * self.hop_base_rtt(i).as_secs_f64() / f64::from(self.cell_bytes)
    }

    /// The source's optimal window in cells (hop 0) — the dashed line in
    /// Figure 1.
    pub fn optimal_source_cwnd_cells(&self) -> f64 {
        self.optimal_cwnd_cells(0)
    }

    /// The source's optimal window in KiB (for plotting against the
    /// paper's axis).
    pub fn optimal_source_cwnd_kib(&self) -> f64 {
        self.optimal_source_cwnd_cells() * f64::from(self.cell_bytes) / 1024.0
    }

    /// Lower bound on the transfer time of `file_bytes` of payload,
    /// ignoring startup: pipeline fill for the first cell plus bottleneck
    /// pacing for the rest.
    pub fn ideal_transfer_time(&self, file_bytes: u64) -> SimDuration {
        assert!(file_bytes > 0, "empty transfer");
        let cells = file_bytes.div_ceil(RELAY_DATA_MAX as u64);
        let mut first = SimDuration::ZERO;
        for l in &self.links {
            first = first + l.rate.transmission_time(self.cell_bytes) + l.delay;
        }
        let pace = self.bottleneck_rate().transmission_time(self.cell_bytes);
        first + pace * (cells - 1)
    }

    /// Upper bound on achievable goodput (bottleneck rate scaled by the
    /// payload/wire ratio), bits per second.
    pub fn max_goodput_bps(&self) -> f64 {
        self.bottleneck_rate().bps() as f64 * (RELAY_DATA_MAX as f64 / self.cell_bytes as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn model(rates_mbps: &[u64], delay_ms: u64) -> PathModel {
        PathModel::new(
            rates_mbps
                .iter()
                .map(|&m| LinkModel {
                    rate: Bandwidth::from_mbps(m),
                    delay: ms(delay_ms),
                })
                .collect(),
        )
    }

    #[test]
    fn bottleneck_detection() {
        let m = model(&[100, 20, 100, 100], 5);
        assert_eq!(m.bottleneck_index(), 1);
        assert_eq!(m.bottleneck_rate(), Bandwidth::from_mbps(20));
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn bottleneck_tie_takes_first() {
        let m = model(&[10, 10, 50], 1);
        assert_eq!(m.bottleneck_index(), 0);
    }

    #[test]
    fn hop_base_rtt_formula() {
        // 100 Mbit/s, 5 ms: 8·532/100e6 s = 42.56 us, + 10 ms.
        let m = model(&[100], 5);
        let rtt = m.hop_base_rtt(0);
        assert_eq!(rtt.as_nanos(), 10_000_000 + 40_960 + 1_600);
    }

    #[test]
    fn optimal_window_little_law() {
        // Bottleneck 20 Mbit/s = 2.5 MB/s; hop-0 RTT ≈ 10.0426 ms at
        // 100 Mbit/s access. W* = 2.5e6 · 0.0100426 / 512 ≈ 49.0 cells.
        let m = model(&[100, 20, 100, 100], 5);
        let w = m.optimal_source_cwnd_cells();
        assert!((48.0..50.5).contains(&w), "W* ≈ 49 cells, got {w}");
        let kib = m.optimal_source_cwnd_kib();
        assert!((24.0..25.3).contains(&kib), "≈ 24.5 KiB, got {kib}");
    }

    #[test]
    fn optimal_window_grows_with_rtt() {
        let short = model(&[100, 20, 100], 2);
        let long = model(&[100, 20, 100], 20);
        assert!(long.optimal_source_cwnd_cells() > 4.0 * short.optimal_source_cwnd_cells());
    }

    #[test]
    fn optimal_window_nearly_independent_of_bottleneck_position() {
        // The source window depends on hop-0 RTT and the bottleneck rate;
        // the bottleneck's position only enters through the (small)
        // forwarding-serialization term, so the dashed lines of Figure 1's
        // two panels nearly coincide.
        let near = model(&[100, 20, 100, 100], 5);
        let far = model(&[100, 100, 100, 20], 5);
        let a = near.optimal_source_cwnd_cells();
        let b = far.optimal_source_cwnd_cells();
        assert!(((a - b) / a).abs() < 0.02, "{a} vs {b}");
    }

    #[test]
    fn slow_local_link_dominates_own_rtt() {
        let m = model(&[5, 100], 5);
        // Hop 0 at 5 Mbit/s: serialization (851.2 us + 32 us) is a visible
        // fraction of the 10 ms propagation.
        let rtt = m.hop_base_rtt(0);
        assert!(rtt > ms(10) && rtt < ms(11));
        // Bottleneck is the local link: W* = r_b·RTT/C.
        let w = m.optimal_cwnd_cells(0);
        assert!((13.0..14.0).contains(&w), "got {w}");
    }

    #[test]
    fn ideal_transfer_time_components() {
        let m = model(&[100, 20, 100, 100], 5);
        // 496 bytes → exactly 1 cell: pipeline fill only.
        let one = m.ideal_transfer_time(496);
        let fill = m.ideal_transfer_time(1);
        assert_eq!(one, fill);
        // Adding one more cell adds one bottleneck serialization time
        // (204.8 us at 20 Mbit/s).
        let two = m.ideal_transfer_time(497);
        assert_eq!(two - one, SimDuration::from_nanos(204_800));
    }

    #[test]
    fn ideal_time_scales_with_file() {
        let m = model(&[100, 20, 100, 100], 5);
        let small = m.ideal_transfer_time(100_000);
        let big = m.ideal_transfer_time(1_000_000);
        assert!(big > small);
        // 1 MB at ~19.4 Mbit/s goodput ≈ 0.43 s; sanity window.
        let secs = big.as_secs_f64();
        assert!((0.3..0.6).contains(&secs), "got {secs}");
    }

    #[test]
    fn max_goodput_accounts_for_header_overhead() {
        let m = model(&[100, 20, 100], 5);
        let g = m.max_goodput_bps();
        assert!(
            (19.3e6..19.4e6).contains(&g),
            "20 Mbit · 496/512 ≈ 19.375 Mbit, got {g}"
        );
    }

    #[test]
    fn from_hops_matches_manual_model() {
        let hops = vec![
            LinkConfig::new(Bandwidth::from_mbps(100), ms(5)),
            LinkConfig::new(Bandwidth::from_mbps(20), ms(5)),
        ];
        let m = PathModel::from_hops(&hops);
        assert_eq!(m.len(), 2);
        assert_eq!(m.bottleneck_rate(), Bandwidth::from_mbps(20));
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn empty_model_rejected() {
        let _ = PathModel::new(vec![]);
    }
}
