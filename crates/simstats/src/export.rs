//! Plain-text exporters for experiment results.
//!
//! Two formats are supported, both trivially consumable:
//!
//! * **CSV** with a header row — for spreadsheets and pandas.
//! * **gnuplot `.dat`** — whitespace-separated columns with `#` comments,
//!   the format the original paper's plots were produced from.
//!
//! The writers are deliberately dependency-free (no serde): every artifact
//! is a flat numeric table. See DESIGN.md §7.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A named numeric column set — the common denominator of everything the
/// harness exports (cwnd traces, CDF points, sweep tables).
///
/// All columns must have equal length.
///
/// # Examples
///
/// ```
/// use simstats::export::Table;
///
/// let mut t = Table::new(vec!["time_ms", "cwnd_kb"]);
/// t.push_row(&[0.0, 1.0]);
/// t.push_row(&[1.0, 2.0]);
/// let csv = t.to_csv();
/// assert!(csv.starts_with("time_ms,cwnd_kb\n0,1\n"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<f64>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "Table requires at least one column");
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header count.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != column count {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row.to_vec());
    }

    /// Builds a table from `(x, y)` pairs with two column names.
    pub fn from_pairs<S: Into<String>>(x_name: S, y_name: S, pairs: &[(f64, f64)]) -> Self {
        let mut t = Table::new(vec![x_name.into(), y_name.into()]);
        for &(x, y) in pairs {
            t.push_row(&[x, y]);
        }
        t
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders a number compactly: integers without a decimal point,
    /// everything else with up to 9 significant digits.
    fn fmt_num(v: f64) -> String {
        if v.fract() == 0.0 && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            let s = format!("{v:.9}");
            // Trim trailing zeros but keep at least one decimal digit.
            let trimmed = s.trim_end_matches('0');
            let trimmed = if trimmed.ends_with('.') {
                &s[..trimmed.len() + 1]
            } else {
                trimmed
            };
            trimmed.to_string()
        }
    }

    /// Serializes to CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row.iter().map(|&v| Self::fmt_num(v)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }

    /// Serializes to a gnuplot-ready `.dat` block: `#`-prefixed header,
    /// whitespace-separated columns.
    pub fn to_gnuplot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.headers.join("\t"));
        for row in &self.rows {
            let line: Vec<String> = row.iter().map(|&v| Self::fmt_num(v)).collect();
            out.push_str(&line.join("\t"));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }

    /// Writes the gnuplot rendering to `path`, creating parent directories.
    pub fn write_gnuplot(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_gnuplot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_shape() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.push_row(&[1.0, 2.5, -3.0]);
        t.push_row(&[4.0, 0.125, 6.0]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines, vec!["a,b,c", "1,2.5,-3", "4,0.125,6"]);
    }

    #[test]
    fn gnuplot_has_comment_header() {
        let mut t = Table::new(vec!["x", "y"]);
        t.push_row(&[1.0, 2.0]);
        let dat = t.to_gnuplot();
        assert!(dat.starts_with("# x\ty\n1\t2\n"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        let mut t = Table::new(vec!["x"]);
        t.push_row(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_panic() {
        let _ = Table::new(Vec::<String>::new());
    }

    #[test]
    fn from_pairs_builds_two_columns() {
        let t = Table::from_pairs("t", "v", &[(0.0, 1.0), (1.0, 2.0)]);
        assert_eq!(t.headers(), &["t".to_string(), "v".to_string()]);
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(Table::fmt_num(3.0), "3");
        assert_eq!(Table::fmt_num(-2.0), "-2");
        assert_eq!(Table::fmt_num(0.5), "0.5");
        assert_eq!(Table::fmt_num(1.0 / 3.0), "0.333333333");
        assert_eq!(Table::fmt_num(0.0), "0");
    }

    #[test]
    fn write_files_roundtrip() {
        let dir = std::env::temp_dir().join("simstats-test-export");
        let _ = fs::remove_dir_all(&dir);
        let mut t = Table::new(vec!["x", "y"]);
        t.push_row(&[1.0, 2.0]);
        let csv_path = dir.join("sub/t.csv");
        let dat_path = dir.join("sub/t.dat");
        t.write_csv(&csv_path).unwrap();
        t.write_gnuplot(&dat_path).unwrap();
        assert_eq!(fs::read_to_string(&csv_path).unwrap(), t.to_csv());
        assert_eq!(fs::read_to_string(&dat_path).unwrap(), t.to_gnuplot());
        let _ = fs::remove_dir_all(&dir);
    }
}
