//! Identifier newtypes for the Tor data plane.

use std::fmt;

/// A circuit identifier, scoped to one connection between two adjacent
/// relays (as in Tor, circuit ids are *link-local*: each hop of a circuit
/// may use a different id).
///
/// Id `0` is reserved for link-level control traffic and never names a
/// circuit.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CircuitId(pub u32);

impl CircuitId {
    /// Reserved id for link-level control cells.
    pub const CONTROL: CircuitId = CircuitId(0);

    /// `true` if this id may name a circuit.
    pub fn is_valid_circuit(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for CircuitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "circ#{}", self.0)
    }
}

/// A stream identifier, scoped to one circuit. Stream id `0` addresses the
/// circuit itself (circuit-level relay cells, e.g. SENDME).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StreamId(pub u16);

impl StreamId {
    /// Addresses the circuit itself rather than a stream.
    pub const CIRCUIT: StreamId = StreamId(0);
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream#{}", self.0)
    }
}

/// Per-hop cell sequence number used by the hop-by-hop transport to match
/// feedback messages to the cells that triggered them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct CellSeq(pub u64);

impl CellSeq {
    /// The next sequence number.
    pub fn next(self) -> CellSeq {
        CellSeq(self.0 + 1)
    }
}

impl fmt::Display for CellSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seq#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_id_is_invalid_circuit() {
        assert!(!CircuitId::CONTROL.is_valid_circuit());
        assert!(CircuitId(1).is_valid_circuit());
    }

    #[test]
    fn displays() {
        assert_eq!(CircuitId(7).to_string(), "circ#7");
        assert_eq!(StreamId(3).to_string(), "stream#3");
        assert_eq!(CellSeq(9).to_string(), "seq#9");
    }

    #[test]
    fn seq_next() {
        assert_eq!(CellSeq(0).next(), CellSeq(1));
        assert_eq!(CellSeq::default(), CellSeq(0));
    }

    #[test]
    fn ids_are_ordered_and_dedupable() {
        // Sorted-Vec dedup instead of a HashSet: the assertion is
        // order-stable, and id types only need Ord for it.
        let mut s = vec![CircuitId(1), CircuitId(1), CircuitId(2)];
        s.sort();
        s.dedup();
        assert_eq!(s, vec![CircuitId(1), CircuitId(2)]);
        assert!(CircuitId(1) < CircuitId(2));
        assert!(StreamId(1) < StreamId(2));
    }
}
