// cs-lint-fixture: path = "crates/simstats/src/badmerge.rs"
struct Agg {
    total: f64,
    count: u64,
}

impl Agg {
    fn merge(&mut self, other: &Agg) { //~ exhaustive-destructure
        self.total += other.total; //~ float-accumulation-in-merge
        self.count += other.count;
    }

    // Accumulation outside a merge fn is the (ordered) recording path.
    fn add(&mut self, v: f64) {
        self.total += v;
        self.count += 1;
    }
}

fn merge_all(parts: &[f64]) -> f64 {
    parts.iter().copied().sum::<f64>() //~ float-accumulation-in-merge
}

struct Counters {
    events: u64,
}

impl Counters {
    // Integer accumulation in a merge is associative (no float
    // finding), but the field still has to be bound exhaustively.
    fn merge(&mut self, other: &Counters) { //~ exhaustive-destructure
        self.events += other.events;
    }
}
