//! Pluggable path selection: the policy seam between the relay
//! directory and circuit placement.
//!
//! Which relays a circuit crosses determines which relays become
//! bottlenecks — and therefore how much a slow start helps — so
//! selection is an experimental axis, not a hard-wired rule. The seam
//! mirrors [`crate::node::CcFactory`]: scenarios carry a
//! [`SelectionPolicy`] (a shared [`PathSelection`] trait object), the
//! network calls it for every placement, and experiments swap policies
//! without touching protocol code.
//!
//! A policy sees a [`DirectoryView`]: the generated relay specs
//! ([`RelaySpec`] bandwidth + access delay) **plus live load telemetry**
//! — the number of circuits currently routed through each relay,
//! maintained by [`crate::network::TorNetwork`] as circuits are placed
//! and torn down. Initial placement therefore already feeds back (each
//! circuit sees its predecessors), and churn rebuilds re-select under
//! the load left by the surviving circuits.
//!
//! # Determinism contract
//!
//! A policy may draw randomness **only** from the [`SimRng`] passed to
//! [`PathSelection::select`] (the network's dedicated placement stream);
//! it must be a pure function of `(view, rng state, path_len)`. It must
//! return exactly `path_len` distinct in-range relay indices — the
//! network validates this and panics on a violating policy. See
//! DESIGN.md §9.
//!
//! # Shipped policies
//!
//! | policy | weight of relay `i` | models |
//! |---|---|---|
//! | [`Uniform`] | 1 | unweighted sampling |
//! | [`BandwidthWeighted`] | `bw_i` | Tor's consensus-bandwidth weighting |
//! | [`LatencyAware`] | `1 / delay_i²` | ShorTor-style latency-driven choice |
//! | [`CongestionAware`] | `bw_i / (1 + load_i)` | Imani et al.-style congestion avoidance |

use std::sync::Arc;

use simcore::rng::SimRng;

use crate::directory::RelaySpec;

/// A selection policy as scenarios carry it: shared, cheaply cloneable,
/// usable both at build time and by the network's churn rebuilds.
pub type SelectionPolicy = Arc<dyn PathSelection>;

/// Every shipped policy, in canonical order — the single source of
/// truth for harnesses ("run each policy") so adding a policy extends
/// every sweep, bench, and differential test at once.
pub fn all_policies() -> [SelectionPolicy; 4] {
    [
        Arc::new(Uniform),
        Arc::new(BandwidthWeighted),
        Arc::new(LatencyAware),
        Arc::new(CongestionAware),
    ]
}

/// What a policy sees when asked to place a circuit: the relay
/// population plus a snapshot of live load. The snapshot is taken at
/// call time — a policy must not assume it stays valid across calls
/// (churn changes it between placements).
#[derive(Clone, Copy, Debug)]
pub struct DirectoryView<'a> {
    specs: &'a [RelaySpec],
    load: &'a [u32],
}

impl<'a> DirectoryView<'a> {
    /// Pairs relay specs with their live circuit counts.
    ///
    /// # Panics
    ///
    /// Panics if the slices disagree in length or are empty.
    pub fn new(specs: &'a [RelaySpec], load: &'a [u32]) -> DirectoryView<'a> {
        assert_eq!(specs.len(), load.len(), "one load counter per relay spec");
        assert!(!specs.is_empty(), "a directory view needs relays");
        DirectoryView { specs, load }
    }

    /// Number of relays.
    #[inline]
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the view holds no relays. Always `false` for a
    /// constructed view (construction rejects empty relay sets), kept
    /// for the standard `len`/`is_empty` pairing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// All relay specs, indexed by relay id.
    #[inline]
    pub fn specs(&self) -> &'a [RelaySpec] {
        self.specs
    }

    /// One relay's access-link characteristics.
    #[inline]
    pub fn spec(&self, relay: usize) -> RelaySpec {
        self.specs[relay]
    }

    /// Circuits currently routed through each relay, indexed by relay id.
    #[inline]
    pub fn loads(&self) -> &'a [u32] {
        self.load
    }

    /// Circuits currently routed through one relay.
    #[inline]
    pub fn load(&self, relay: usize) -> u32 {
        self.load[relay]
    }
}

/// The path-selection seam: maps a directory view to `path_len`
/// distinct relay indices (in path order, client side first).
///
/// See the [module docs](self) for the determinism contract.
pub trait PathSelection: std::fmt::Debug + Send + Sync {
    /// Stable identifier used in experiment labels and bench keys.
    fn name(&self) -> &'static str;

    /// Selects `path_len` **distinct** relay indices.
    ///
    /// # Panics
    ///
    /// Panics if `path_len` exceeds the number of relays in `view`.
    fn select(&self, view: &DirectoryView<'_>, rng: &mut SimRng, path_len: usize) -> Vec<usize>;
}

fn assert_path_fits(view: &DirectoryView<'_>, path_len: usize) {
    assert!(
        path_len <= view.len(),
        "cannot pick {path_len} distinct relays from {}",
        view.len()
    );
}

/// Repeated weighted draws without replacement, shared by every weighted
/// policy. The total is maintained as a running sum, decremented as
/// picks are zeroed (O(n) per draw for the scan, no O(n) re-summation).
/// For integer-valued weights below 2⁵³ (bandwidths in bit/s) every
/// partial sum is exact, so the draw sequence is bit-identical to the
/// historical recompute-the-sum implementation — pinned by
/// `tests/path_selection.rs`.
///
/// Zero-weight entries are legal and simply unselectable: a directory
/// may carry a dead relay (zero consensus bandwidth, a congestion
/// weight collapsed by load) without making placement panic. Only when
/// fewer than `path_len` entries carry positive weight is the draw
/// impossible, and *that* panics with a message naming the shortfall.
///
/// # Panics
///
/// Panics if fewer than `path_len` weights are positive, or if any
/// weight is negative or non-finite (a policy bug, not a directory
/// condition).
fn weighted_distinct(mut weights: Vec<f64>, rng: &mut SimRng, path_len: usize) -> Vec<usize> {
    assert!(
        weights.iter().all(|&w| w >= 0.0 && w.is_finite()),
        "selection weights must be finite and non-negative"
    );
    let selectable = weights.iter().filter(|&&w| w > 0.0).count();
    assert!(
        selectable >= path_len,
        "only {selectable} of {} relays are selectable (positive weight), \
         but the path needs {path_len} distinct relays",
        weights.len()
    );
    let mut chosen: Vec<usize> = Vec::with_capacity(path_len);
    // Zero weights contribute exactly 0.0, so the total — and therefore
    // every draw — is bit-identical to a directory without them.
    let mut total: f64 = weights.iter().sum();
    for _ in 0..path_len {
        debug_assert!(total > 0.0);
        let mut x = rng.range_f64(0.0, total);
        // `pick` tracks the last positive-weight index visited, so a
        // floating-point overrun of `x` past the (inexact) running total
        // still lands on a selectable relay instead of a zeroed one.
        let mut pick = usize::MAX;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            pick = i;
            if x < w {
                break;
            }
            x -= w;
        }
        debug_assert!(pick != usize::MAX, "some weight must remain positive");
        chosen.push(pick);
        total -= weights[pick];
        weights[pick] = 0.0; // without replacement
    }
    chosen
}

/// Every relay is equally likely — the paper's default placement.
#[derive(Clone, Copy, Debug, Default)]
pub struct Uniform;

impl PathSelection for Uniform {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn select(&self, view: &DirectoryView<'_>, rng: &mut SimRng, path_len: usize) -> Vec<usize> {
        assert_path_fits(view, path_len);
        rng.sample_distinct(view.len(), path_len)
    }
}

/// Probability proportional to access bandwidth — Tor's consensus-
/// bandwidth weighting, the baseline the paper's star evaluation models.
#[derive(Clone, Copy, Debug, Default)]
pub struct BandwidthWeighted;

impl PathSelection for BandwidthWeighted {
    fn name(&self) -> &'static str {
        "bandwidth"
    }

    fn select(&self, view: &DirectoryView<'_>, rng: &mut SimRng, path_len: usize) -> Vec<usize> {
        assert_path_fits(view, path_len);
        let weights = view
            .specs()
            .iter()
            .map(|r| r.bandwidth.bps() as f64)
            .collect();
        weighted_distinct(weights, rng, path_len)
    }
}

/// Prefer low access-delay relays (cf. ShorTor's latency-driven routing
/// in PAPERS.md): weight `1 / delay²`. The inverse-square emphasis makes
/// the preference decisive over the narrow delay ranges directories
/// generate, while never excluding a relay outright.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencyAware;

/// Floor applied to access delays before inverting, so a zero-delay
/// test relay cannot produce an infinite weight.
const MIN_DELAY_S: f64 = 1e-6;

impl PathSelection for LatencyAware {
    fn name(&self) -> &'static str {
        "latency"
    }

    fn select(&self, view: &DirectoryView<'_>, rng: &mut SimRng, path_len: usize) -> Vec<usize> {
        assert_path_fits(view, path_len);
        let weights = view
            .specs()
            .iter()
            .map(|r| {
                let d = r.delay.as_secs_f64().max(MIN_DELAY_S);
                1.0 / (d * d)
            })
            .collect();
        weighted_distinct(weights, rng, path_len)
    }
}

/// Penalize relays by active-circuit load per unit bandwidth (cf. Imani
/// et al.'s congestion-aware relay choice in PAPERS.md): weight
/// `bw / (1 + load)`, i.e. bandwidth-proportional selection discounted
/// by the circuits already routed through the relay. With zero load
/// everywhere this intentionally reduces to [`BandwidthWeighted`]; load
/// feedback is what differentiates it mid-experiment.
#[derive(Clone, Copy, Debug, Default)]
pub struct CongestionAware;

impl PathSelection for CongestionAware {
    fn name(&self) -> &'static str {
        "congestion"
    }

    fn select(&self, view: &DirectoryView<'_>, rng: &mut SimRng, path_len: usize) -> Vec<usize> {
        assert_path_fits(view, path_len);
        let weights = view
            .specs()
            .iter()
            .zip(view.loads())
            .map(|(r, &load)| r.bandwidth.bps() as f64 / (1.0 + f64::from(load)))
            .collect();
        weighted_distinct(weights, rng, path_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::{Directory, DirectoryConfig};
    use netsim::bandwidth::Bandwidth;
    use simcore::time::SimDuration;

    fn rng() -> SimRng {
        SimRng::seed_from(42)
    }

    fn spec(mbps: u64, delay_ms: u64) -> RelaySpec {
        RelaySpec {
            bandwidth: Bandwidth::from_mbps(mbps),
            delay: SimDuration::from_millis(delay_ms),
        }
    }

    #[test]
    fn every_policy_returns_distinct_in_range_indices() {
        let dir = Directory::generate(&DirectoryConfig::default(), &rng());
        let load = vec![0u32; dir.len()];
        for policy in all_policies() {
            let mut r = rng();
            for _ in 0..100 {
                let view = DirectoryView::new(dir.relays(), &load);
                let p = policy.select(&view, &mut r, 3);
                assert_eq!(p.len(), 3, "{}", policy.name());
                let mut q = p.clone();
                q.sort_unstable();
                q.dedup();
                assert_eq!(q.len(), 3, "{} repeated a relay", policy.name());
                assert!(p.iter().all(|&i| i < dir.len()), "{}", policy.name());
            }
        }
    }

    #[test]
    fn uniform_matches_raw_distinct_sampling() {
        let dir = Directory::generate(&DirectoryConfig::default(), &rng());
        let load = vec![0u32; dir.len()];
        let mut a = rng();
        let mut b = rng();
        for _ in 0..50 {
            let view = DirectoryView::new(dir.relays(), &load);
            assert_eq!(
                Uniform.select(&view, &mut a, 3),
                b.sample_distinct(dir.len(), 3)
            );
        }
    }

    #[test]
    fn bandwidth_weighted_prefers_fat_relays() {
        // One relay 1000× the bandwidth of the others: it should appear
        // in nearly every 1-relay path.
        let mut specs = vec![spec(1, 10); 10];
        specs[4] = spec(1000, 10);
        let load = vec![0u32; specs.len()];
        let mut r = rng();
        let hits = (0..200)
            .filter(|_| {
                let view = DirectoryView::new(&specs, &load);
                BandwidthWeighted.select(&view, &mut r, 1)[0] == 4
            })
            .count();
        assert!(hits > 150, "fat relay picked only {hits}/200 times");
    }

    #[test]
    fn latency_aware_prefers_near_relays() {
        // One relay at 1 ms among relays at 30 ms: the inverse-square
        // weight gives it ~99% of the mass.
        let mut specs = vec![spec(50, 30); 10];
        specs[7] = spec(50, 1);
        let load = vec![0u32; specs.len()];
        let mut r = rng();
        let hits = (0..200)
            .filter(|_| {
                let view = DirectoryView::new(&specs, &load);
                LatencyAware.select(&view, &mut r, 1)[0] == 7
            })
            .count();
        assert!(hits > 150, "near relay picked only {hits}/200 times");
    }

    #[test]
    fn latency_aware_tolerates_zero_delay() {
        let specs = vec![
            RelaySpec {
                bandwidth: Bandwidth::from_mbps(10),
                delay: SimDuration::ZERO,
            };
            4
        ];
        let load = vec![0u32; 4];
        let mut r = rng();
        let view = DirectoryView::new(&specs, &load);
        let p = LatencyAware.select(&view, &mut r, 2);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn congestion_aware_reduces_to_bandwidth_at_zero_load() {
        let dir = Directory::generate(&DirectoryConfig::default(), &rng());
        let load = vec![0u32; dir.len()];
        let mut a = rng();
        let mut b = rng();
        for _ in 0..50 {
            let view = DirectoryView::new(dir.relays(), &load);
            assert_eq!(
                CongestionAware.select(&view, &mut a, 3),
                BandwidthWeighted.select(&view, &mut b, 3),
                "zero load must reproduce the Tor baseline"
            );
        }
    }

    #[test]
    fn congestion_aware_avoids_loaded_relays() {
        // Equal bandwidths, but relay 2 already carries 50 circuits: its
        // weight collapses to ~2% of an idle relay's.
        let specs = vec![spec(20, 5); 8];
        let mut load = vec![0u32; 8];
        load[2] = 50;
        let mut r = rng();
        let hits = (0..400)
            .filter(|_| {
                let view = DirectoryView::new(&specs, &load);
                CongestionAware.select(&view, &mut r, 1)[0] == 2
            })
            .count();
        // Idle expectation would be 50; the penalty pushes it near 1.
        assert!(hits < 15, "loaded relay still picked {hits}/400 times");
    }

    #[test]
    fn congestion_aware_trades_bandwidth_against_load() {
        // A 100 Mbit/s relay carrying 9 circuits weighs 10 Mbit/s
        // effective — exactly an idle 10 Mbit/s relay. A 3× idle relay
        // must then dominate both.
        let specs = vec![spec(100, 5), spec(30, 5), spec(10, 5)];
        let load = vec![9u32, 0, 0];
        let mut r = rng();
        let mut counts = [0usize; 3];
        for _ in 0..600 {
            let view = DirectoryView::new(&specs, &load);
            counts[CongestionAware.select(&view, &mut r, 1)[0]] += 1;
        }
        assert!(
            counts[1] > counts[0] && counts[1] > counts[2],
            "30 Mbit/s idle relay must dominate: {counts:?}"
        );
    }

    #[test]
    fn weighted_draw_sequence_matches_naive_resummation() {
        // The running-total optimization must reproduce the historical
        // recompute-the-sum implementation draw for draw (exact, because
        // bandwidth weights are integers below 2^53).
        fn naive(weights: &mut [f64], rng: &mut SimRng, k: usize) -> Vec<usize> {
            let mut chosen = Vec::with_capacity(k);
            for _ in 0..k {
                let total: f64 = weights.iter().sum();
                let mut x = rng.range_f64(0.0, total);
                let mut pick = weights.len() - 1;
                for (i, &w) in weights.iter().enumerate() {
                    if w > 0.0 && x < w {
                        pick = i;
                        break;
                    }
                    x -= w;
                }
                chosen.push(pick);
                weights[pick] = 0.0;
            }
            chosen
        }
        for seed in [1u64, 9, 33, 71] {
            let dir = Directory::generate(
                &DirectoryConfig {
                    relays: 40,
                    ..DirectoryConfig::default()
                },
                &SimRng::seed_from(seed),
            );
            let weights: Vec<f64> = dir
                .relays()
                .iter()
                .map(|r| r.bandwidth.bps() as f64)
                .collect();
            let mut a = SimRng::seed_from(seed ^ 0xABCD);
            let mut b = a.clone();
            for _ in 0..200 {
                let fast = weighted_distinct(weights.clone(), &mut a, 5);
                let slow = naive(&mut weights.clone(), &mut b, 5);
                assert_eq!(fast, slow, "seed {seed}: draw sequences diverged");
            }
        }
    }

    #[test]
    fn zero_weight_relays_are_skipped_not_fatal() {
        // Regression: a weight vector containing dead relays (zero
        // weight — a zero-consensus-bandwidth entry, or any future
        // policy that excludes relays outright) used to trip
        // `weighted_distinct`'s everything-positive debug assertion on
        // entry. Dead entries must instead be silently unselectable.
        let weights = vec![5.0e6, 0.0, 3.0e6, 0.0, 2.0e6, 1.0e6];
        let mut r = rng();
        for _ in 0..300 {
            let picks = weighted_distinct(weights.clone(), &mut r, 3);
            assert_eq!(picks.len(), 3);
            assert!(
                picks.iter().all(|&i| weights[i] > 0.0),
                "picked a zero-weight relay: {picks:?}"
            );
            let mut dedup = picks.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "repeated a relay: {picks:?}");
        }
    }

    #[test]
    fn zero_weights_leave_the_draw_sequence_unchanged() {
        // Dead relays contribute exactly 0.0 to every partial sum, so a
        // directory with them interleaved must reproduce the dense
        // directory's draw sequence bit for bit (with indices remapped).
        let dense = vec![5.0e6, 3.0e6, 2.0e6, 7.0e6];
        let sparse = vec![5.0e6, 0.0, 3.0e6, 2.0e6, 0.0, 7.0e6];
        // sparse index -> dense index for the positive entries.
        let remap = [0usize, usize::MAX, 1, 2, usize::MAX, 3];
        let mut a = rng();
        let mut b = rng();
        for _ in 0..100 {
            let d = weighted_distinct(dense.clone(), &mut a, 2);
            let s = weighted_distinct(sparse.clone(), &mut b, 2);
            let s_mapped: Vec<usize> = s.iter().map(|&i| remap[i]).collect();
            assert_eq!(d, s_mapped, "zero weights perturbed the draws");
        }
    }

    #[test]
    #[should_panic(expected = "selectable (positive weight)")]
    fn too_few_selectable_relays_panics_clearly() {
        // Three relays, two of them dead: a 3-relay path is impossible
        // and must fail loudly with the shortfall named.
        let _ = weighted_distinct(vec![0.0, 4.0e6, 0.0], &mut rng(), 3);
    }

    #[test]
    #[should_panic(expected = "distinct relays")]
    fn path_longer_than_directory_panics() {
        let specs = vec![spec(1, 0)];
        let load = vec![0u32];
        let view = DirectoryView::new(&specs, &load);
        let _ = Uniform.select(&view, &mut rng(), 2);
    }

    #[test]
    #[should_panic(expected = "one load counter per relay")]
    fn mismatched_load_slice_rejected() {
        let specs = vec![spec(1, 1); 3];
        let load = vec![0u32; 2];
        let _ = DirectoryView::new(&specs, &load);
    }
}
