//! # cs-bench — figure regeneration and performance benchmarks
//!
//! This crate holds everything that (re)produces the paper's numbers:
//!
//! * **Figure binaries** (`src/bin/`): each regenerates one artifact of
//!   the paper's evaluation, printing the same series the paper plots and
//!   writing gnuplot-ready `.dat` files under `target/figures/`.
//!   - `fig1_cwnd` — the upper panels (source cwnd traces, distances 1
//!     and 3, with the model-optimal dashed line);
//!   - `fig1_cdf` — the lower panel (time-to-last-byte CDFs for 50
//!     concurrent circuits, CircuitStart vs plain BackTap vs classic);
//!   - `ablations` — the A1–A6 sweeps from DESIGN.md §5 (γ/θ, initial
//!     window, compensation variants, bottleneck distance, load,
//!     mid-flow bandwidth change).
//! * **Benches** (`benches/`, `harness = false` on the local
//!   [`harness`] module): simulator event throughput, cell codec
//!   throughput, and end-to-end figure workloads.
//!
//! Everything here is a thin driver over the `circuitstart` harness; the
//! shared code lives in this library so the binaries and benches cannot
//! drift apart.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod harness;

use std::path::PathBuf;

use simstats::export::Table;

/// Output directory for figure data files: `target/figures/`.
pub fn figures_dir() -> PathBuf {
    // CARGO_TARGET_DIR is not set inside `cargo run`; derive from the
    // workspace layout instead (bench crate → workspace root → target).
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .join("target")
        .join("figures")
}

/// Writes a table as `<name>.dat` under [`figures_dir`], reporting the
/// path on stdout.
pub fn write_figure(name: &str, table: &Table) {
    let path = figures_dir().join(format!("{name}.dat"));
    table
        .write_gnuplot(&path)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("  wrote {}", path.display());
}

/// Parses `--key value`-style options from the command line, with
/// defaults. Deliberately tiny — the binaries take at most three options,
/// which does not justify an argument-parsing dependency.
pub struct Options {
    args: Vec<String>,
}

impl Options {
    /// Captures the process arguments.
    pub fn from_env() -> Options {
        Options {
            args: std::env::args().skip(1).collect(),
        }
    }

    /// The value following `--name`, parsed, or `default`.
    ///
    /// # Panics
    ///
    /// Panics with a readable message if the value does not parse.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T
    where
        T::Err: std::fmt::Display,
    {
        self.get_opt(name).unwrap_or(default)
    }

    /// The value following `--name`, parsed, or `None` when the flag is
    /// absent.
    ///
    /// # Panics
    ///
    /// Panics with a readable message if the value does not parse.
    pub fn get_opt<T: std::str::FromStr>(&self, name: &str) -> Option<T>
    where
        T::Err: std::fmt::Display,
    {
        let flag = format!("--{name}");
        let mut it = self.args.iter();
        while let Some(a) = it.next() {
            if *a == flag {
                let v = it
                    .next()
                    .unwrap_or_else(|| panic!("missing value for {flag}"));
                return Some(
                    v.parse()
                        .unwrap_or_else(|e| panic!("bad value for {flag}: {e}")),
                );
            }
        }
        None
    }

    /// Whether the bare flag `--name` is present.
    pub fn has(&self, name: &str) -> bool {
        let flag = format!("--{name}");
        self.args.contains(&flag)
    }

    /// Positional (non `--`) arguments.
    pub fn positional(&self) -> Vec<&str> {
        let mut out = Vec::new();
        let mut skip_next = false;
        for a in &self.args {
            if skip_next {
                skip_next = false;
                continue;
            }
            if a.starts_with("--") {
                skip_next = true;
            } else {
                out.push(a.as_str());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Options {
        Options {
            args: args.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn get_with_default() {
        let o = opts(&["--distance", "3", "--seed", "42"]);
        assert_eq!(o.get("distance", 1usize), 3);
        assert_eq!(o.get("seed", 1u64), 42);
        assert_eq!(o.get("other", 7u32), 7);
    }

    #[test]
    fn get_opt_is_optional() {
        let o = opts(&["--json", "/tmp/x.json"]);
        assert_eq!(o.get_opt::<String>("json").as_deref(), Some("/tmp/x.json"));
        assert_eq!(o.get_opt::<u64>("seed"), None);
    }

    #[test]
    fn has_flag() {
        let o = opts(&["--fast"]);
        assert!(o.has("fast"));
        assert!(!o.has("slow"));
    }

    #[test]
    fn positional_skips_option_values() {
        let o = opts(&["gamma", "--seed", "5", "load"]);
        assert_eq!(o.positional(), vec!["gamma", "load"]);
    }

    #[test]
    #[should_panic(expected = "bad value")]
    fn bad_value_panics() {
        let o = opts(&["--seed", "x"]);
        let _ = o.get("seed", 0u64);
    }

    #[test]
    fn figures_dir_is_under_target() {
        let d = figures_dir();
        assert!(d.ends_with("target/figures"));
    }
}
