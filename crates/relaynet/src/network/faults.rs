//! Pipeline stage — fault injection and the client-side recovery loop.
//!
//! The failure model (DESIGN.md §12) is *fail-silent*: a crashed relay
//! drops every frame addressed to it — no DESTROY, no notification, no
//! omniscient teardown. Everything downstream of that single rule lives
//! here:
//!
//! * **Injection** — [`TorEvent::RelayCrash`] marks the relay's overlay
//!   node dead (the connection layer's drop gate takes over) and *reaps*
//!   its own participations so its queued payload buffers return to the
//!   pool. Reaping is silent: a dead node pays no confirms and sends no
//!   cells.
//! * **Detection** — every circuit incarnation arms a **build timer**
//!   when it starts; once established, the timer chain re-arms as a
//!   **liveness timer** carrying a progress snapshot (delivered bytes of
//!   the circuit's flows). A timer that fires with no progress since its
//!   snapshot is the client's only evidence of failure.
//! * **Recovery** — [`TorNetwork::force_abandon`]: blame the first dead
//!   hop on the path (excluding it from future selection), reap the
//!   orphaned participations beyond it (no DESTROY can ever reach them —
//!   the reap stands in for their own idle timers), then tear the
//!   circuit down through the ordinary two-wave DESTROY machinery, which
//!   reflects at the dead hop. The reclamation path then schedules the
//!   rebuild under exponential backoff with jitter; a lineage that
//!   exhausts its retry cap — or a world whose selectable relay set
//!   fell below the path length — parks its flows until an epoch join
//!   replenishes the consensus.
//!
//! Worlds without an installed [`super::FaultState`] never reach any of
//! this code: no timers arm, no branches are taken, and the event stream
//! is bit-identical to a fault-free build.

use simcore::sim::Context;

use crate::event::{TimerKind, TorEvent};
use crate::ids::{CircId, OverlayId};
use crate::node::ClientStage;

use super::{TorNetwork, DESTROY_REASON_TIMEOUT};

impl TorNetwork {
    /// A relay crashed (from a [`TorEvent::RelayCrash`]): mark it dead
    /// for the connection layer's drop gate and silently reap every
    /// participation it holds. The directory is *not* touched — unlike
    /// an epoch departure, nobody is told; clients learn from timers and
    /// blame-driven exclusion.
    pub(super) fn relay_crash(&mut self, ctx: &mut Context<'_, TorEvent>, relay: u32) {
        let overlay = self.overlay_of_relay(relay);
        let Some(f) = self.faults.as_mut() else {
            debug_assert!(false, "RelayCrash scheduled without installed fault state");
            return;
        };
        if !f.mark_crashed(overlay.index()) {
            return;
        }
        self.stats.crashes_injected += 1;
        for (circ, _) in self.nodes[overlay.index()].participations() {
            self.reap_participation(ctx, overlay, circ);
            self.repair_severed_teardown(ctx, circ);
        }
    }

    /// A crash can land *after* a teardown's DESTROY wave already
    /// passed into the dead relay: the wave dies there, and every
    /// participant still waiting on it — or on confirms from the dead
    /// hop — would wait forever. If the circuit's client side is
    /// already closed (or reclaimed), the teardown's outcome is sealed,
    /// so the remaining bookkeeping completes by silently reaping the
    /// survivors; exactly-once ledger accounting is preserved by the
    /// client's `accounted` flag. Circuits whose client is still open
    /// are left strictly alone — those clients must *detect* the crash
    /// through their timers.
    fn repair_severed_teardown(&mut self, ctx: &mut Context<'_, TorEvent>, circ: CircId) {
        let path = self.circuits[circ.index()].path.clone();
        let client = &self.nodes[path[0].index()];
        let client_open = client
            .local_idx(circ)
            .is_some_and(|l| !client.circuit_at(l).closed);
        if client_open {
            return;
        }
        for &n in &path {
            if !self.is_crashed(n) {
                self.reap_participation(ctx, n, circ);
            }
        }
    }

    /// A client circuit timer fired (from a [`TorEvent::CircTimeout`]).
    /// Stale timers — the incarnation was already abandoned, reclaimed,
    /// or torn down — die here; a genuine one either re-arms with a
    /// fresh progress snapshot or abandons the circuit.
    pub(super) fn circ_timeout(
        &mut self,
        ctx: &mut Context<'_, TorEvent>,
        circ: CircId,
        incarnation: u32,
        progress: u64,
        kind: TimerKind,
    ) {
        let Some(f) = self.faults.as_ref() else {
            return;
        };
        let liveness = f.spec.liveness_timeout();
        let info = &self.circuits[circ.index()];
        if info.incarnation != incarnation {
            return;
        }
        let client_id = info.path[0];
        let Some(nc) = self.nodes[client_id.index()].circuit(circ) else {
            return; // already reclaimed
        };
        if nc.closed {
            return; // torn down, awaiting quiescence
        }
        let stage = nc
            .client
            .as_ref()
            .expect("timers only arm at clients")
            .stage;
        match stage {
            ClientStage::Closed => {}
            ClientStage::Building { .. } => {
                // Still telescoping when the build timer fired: the
                // half-built circuit is abandoned outright.
                self.force_abandon(ctx, circ);
            }
            ClientStage::Established => {
                let all_complete = info
                    .workload
                    .streams
                    .iter()
                    .all(|s| self.flows[s.flow.index()].complete());
                if all_complete {
                    return; // transfer done; let the chain die
                }
                let now_progress = self.circ_progress(circ);
                if now_progress > progress || kind == TimerKind::Build {
                    // Progress since the snapshot — or the build beat
                    // its timer (one grace period before liveness
                    // judgement begins).
                    ctx.schedule_in(
                        liveness,
                        TorEvent::CircTimeout {
                            circ,
                            incarnation,
                            progress: now_progress,
                            kind: TimerKind::Liveness,
                        },
                    );
                } else {
                    self.force_abandon(ctx, circ);
                }
            }
        }
    }

    /// Delivered bytes across the circuit's flows — the liveness
    /// progress metric. The flow ledger stands in for client-visible
    /// acked progress (the simulator is its own oracle); it is monotone,
    /// so an unchanged value across a liveness window proves a stall.
    fn circ_progress(&self, circ: CircId) -> u64 {
        self.circuits[circ.index()]
            .workload
            .streams
            .iter()
            .map(|s| self.flows[s.flow.index()].delivered)
            .sum()
    }

    /// The client gives up on a circuit: blame the first dead hop (if
    /// any), reap the participations stranded beyond it, charge the
    /// lineage one retry under exponential backoff, and run the ordinary
    /// teardown — whose DESTROY wave reflects at the dead hop and whose
    /// reclamation path schedules the rebuild.
    fn force_abandon(&mut self, ctx: &mut Context<'_, TorEvent>, circ: CircId) {
        self.stats.timeouts_fired += 1;
        let path = self.circuits[circ.index()].path.clone();
        // Blame: the path's first dead hop. A timeout with no dead hop
        // is a transient stall — nobody is excluded for it.
        if let Some(k) = path.iter().position(|&n| self.is_crashed(n)) {
            if let Some(r) = self.relay_id_of(path[k]) {
                if self.exclude_relay(r) {
                    self.stats.blamed_exclusions += 1;
                }
            }
        }
        // Exponential backoff with jitter, charged against the lineage.
        // The delay lands in `rebuild_delay`, which the reclamation path
        // reads when it schedules the retry ([`TorNetwork::maybe_reclaim`]).
        let delay = {
            let f = self
                .faults
                .as_mut()
                .expect("force_abandon requires fault state");
            let frac = f.jitter.range_f64(0.0, 1.0);
            f.spec.backoff(self.circuits[circ.index()].retries, frac)
        };
        self.stats.retries += 1;
        let info = &mut self.circuits[circ.index()];
        info.retries += 1;
        info.workload.rebuild_delay = delay;
        self.teardown_with_reason(ctx, circ, DESTROY_REASON_TIMEOUT);
    }

    /// Silently removes one node's participation in `circ`: queued cells
    /// drain back to the payload pool *without* paying confirms or
    /// sending anything (a dead or unreachable node must not signal),
    /// outstanding sends are written off, and the slot reclaims through
    /// the ordinary quiescence path. No-op if the node no longer
    /// participates.
    pub(super) fn reap_participation(
        &mut self,
        ctx: &mut Context<'_, TorEvent>,
        node_id: OverlayId,
        circ: CircId,
    ) {
        let node = &mut self.nodes[node_id.index()];
        let Some(local) = node.local_idx(circ) else {
            return;
        };
        let my_net = node.net_node;
        let nc = node.circuit_at_mut(local);
        if nc.is_vacant() {
            return;
        }
        if !nc.closed {
            nc.closed = true;
            if let Some(app) = nc.client.as_mut() {
                app.stage = ClientStage::Closed;
            }
        }
        Self::drain_scheduled(
            &mut self.net,
            &mut self.link_sched,
            &self.router,
            &self.net_node_of,
            &mut self.stats,
            &mut self.payload_pool,
            ctx,
            my_net,
            nc,
            false,
        );
        if let Some(h) = nc.fwd.as_mut() {
            Self::drain_hopdir(
                &mut self.net,
                &mut self.link_sched,
                &self.router,
                &self.net_node_of,
                &mut self.stats,
                &mut self.payload_pool,
                ctx,
                my_net,
                h,
                false,
            );
            h.transport.forget_all();
        }
        if let Some(h) = nc.bwd.as_mut() {
            Self::drain_hopdir(
                &mut self.net,
                &mut self.link_sched,
                &self.router,
                &self.net_node_of,
                &mut self.stats,
                &mut self.payload_pool,
                ctx,
                my_net,
                h,
                false,
            );
            h.transport.forget_all();
        }
        nc.destroy_fwd = true;
        nc.destroy_bwd = true;
        // The drains above wrote off sends that may still be in flight
        // carrying these link-local ids: retire the ids so reclamation
        // never recycles them under a straggler (see
        // [`super::LinkRoute::retired`]).
        let ids = [
            nc.fwd.as_ref().map(|h| h.link_circ_id),
            nc.bwd.as_ref().map(|h| h.link_circ_id),
        ];
        for id in ids.into_iter().flatten() {
            self.retire_link_id(id);
        }
        self.maybe_reclaim(ctx, node_id, local);
    }
}
