//! The workspace symbol table, conservative call graph, and the four
//! semantic rules built on them (DESIGN.md §14):
//!
//! * `transitive-wall-clock` / `transitive-threads` — reverse
//!   reachability from clock/thread sink sites over resolved call
//!   edges;
//! * `rng-stream-collision` — duplicate `derive("…")` labels under one
//!   parent stream in one function;
//! * `exhaustive-destructure` — `fn merge*` / `fn export*` /
//!   fingerprint constructors over workspace structs must bind fields
//!   through an exhaustive `Self { … }` pattern or literal with no
//!   `..` rest.
//!
//! # Conservatism
//!
//! Every resolution step prefers *no edge* over a guessed edge, so the
//! graph under-approximates reachability and the transitive rules never
//! fire on a call the resolver is not sure about:
//!
//! * trait dispatch is opaque — a method name defined more than once
//!   (e.g. `execute` on both executors) resolves to nothing;
//! * closures are opaque — calls through a stored closure produce no
//!   edge;
//! * cross-crate matches require a declared path dependency between the
//!   caller's and callee's packages (no edge into a crate the caller
//!   cannot even link);
//! * qualified calls (`foo::bar(…)`) resolve only against workspace
//!   owners/modules — `std`-qualified calls never accidentally match a
//!   workspace function of the same name.
//!
//! The one over-approximation: a *method* call `x.name(…)` whose name
//! is unique across the workspace is assumed to target that method even
//! though `x`'s type is unknown. Shared names with std methods
//! (`push`, `len`, `insert`, …) are near-always multiply defined or
//! filtered by the dependency check, and a false edge costs one
//! spurious-but-annotatable finding, never a missed one.

use std::collections::{BTreeMap, BTreeSet};

use crate::items::ItemIndex;
use crate::lexer::{Token, TokenKind};
use crate::rules::{RawFinding, Rule};

/// One file's view into the workspace analysis.
pub struct FileView<'a> {
    pub rel_path: &'a str,
    /// Cargo package name ([`crate::policy::classify`]).
    pub krate: &'a str,
    pub src: &'a str,
    /// Comment-free token stream.
    pub code: &'a [Token],
    pub items: &'a ItemIndex,
}

/// package name → packages it depends on (directly).
pub type DepMap = BTreeMap<String, BTreeSet<String>>;

/// A function key: (file index, fn index within that file's items).
type FnKey = (usize, usize);

/// What a reachability sink is, for the two transitive rules.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Sink {
    WallClock,
    Threads,
}

impl Sink {
    fn rule(self) -> Rule {
        match self {
            Sink::WallClock => Rule::TransitiveWallClock,
            Sink::Threads => Rule::TransitiveThreads,
        }
    }
    fn label(self) -> &'static str {
        match self {
            Sink::WallClock => "a wall-clock read",
            Sink::Threads => "thread creation",
        }
    }
}

/// Keywords and control-flow idents that look like calls when followed
/// by `(` but never are.
const NON_CALL_IDENTS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "move", "in", "as", "where", "unsafe",
    "let", "else", "break", "continue", "await", "box", "yield", "dyn", "ref", "mut", "pub",
    "impl", "use", "mod", "struct", "enum", "trait", "type", "const", "static", "crate", "super",
];

/// Runs the whole item-graph analysis over the workspace files and
/// returns `(file index, raw finding)` pairs for the engine to scope
/// and suppress like any token-level finding.
pub fn analyze(files: &[FileView<'_>], deps: Option<&DepMap>) -> Vec<(usize, RawFinding)> {
    let an = Analysis::build(files, deps);
    let mut out = Vec::new();
    an.transitive_findings(&mut out);
    an.rng_collision_findings(&mut out);
    an.exhaustive_destructure_findings(&mut out);
    out
}

struct Analysis<'a> {
    files: &'a [FileView<'a>],
    /// Transitive dependency closure per package (reflexive).
    dep_closure: Option<BTreeMap<&'a str, BTreeSet<&'a str>>>,
    /// fn name → every definition with that name.
    by_name: BTreeMap<&'a str, Vec<FnKey>>,
    /// struct name → every definition with that name.
    struct_by_name: BTreeMap<&'a str, Vec<(usize, usize)>>,
    /// Resolved call edges: caller → callees (with the call-site token).
    calls: BTreeMap<FnKey, Vec<(FnKey, usize)>>,
    /// Functions whose bodies contain a sink directly.
    direct: BTreeMap<FnKey, Vec<Sink>>,
}

impl<'a> Analysis<'a> {
    fn build(files: &'a [FileView<'a>], deps: Option<&'a DepMap>) -> Analysis<'a> {
        let dep_closure = deps.map(|d| {
            let mut closure: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
            for name in d.keys() {
                let mut seen: BTreeSet<&str> = BTreeSet::new();
                let mut stack = vec![name.as_str()];
                while let Some(n) = stack.pop() {
                    if seen.insert(n) {
                        if let Some(next) = d.get(n) {
                            stack.extend(next.iter().map(String::as_str));
                        }
                    }
                }
                closure.insert(name.as_str(), seen);
            }
            closure
        });

        let mut by_name: BTreeMap<&str, Vec<FnKey>> = BTreeMap::new();
        let mut struct_by_name: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (gi, f) in file.items.fns.iter().enumerate() {
                by_name.entry(&f.name).or_default().push((fi, gi));
            }
            for (si, s) in file.items.structs.iter().enumerate() {
                struct_by_name.entry(&s.name).or_default().push((fi, si));
            }
        }

        let mut an = Analysis {
            files,
            dep_closure,
            by_name,
            struct_by_name,
            calls: BTreeMap::new(),
            direct: BTreeMap::new(),
        };
        an.extract_calls_and_sinks();
        an
    }

    /// `true` when a file in package `from` may link symbols of `to`.
    fn linkable(&self, from: &str, to: &str) -> bool {
        if from == to {
            return true;
        }
        match &self.dep_closure {
            None => true, // no manifest knowledge: single-file scans
            Some(c) => c.get(from).is_some_and(|set| set.contains(to)),
        }
    }

    fn extract_calls_and_sinks(&mut self) {
        let mut calls: BTreeMap<FnKey, Vec<(FnKey, usize)>> = BTreeMap::new();
        let mut direct: BTreeMap<FnKey, Vec<Sink>> = BTreeMap::new();
        for (fi, file) in self.files.iter().enumerate() {
            let text = |i: usize| file.code.get(i).map(|t| t.text(file.src)).unwrap_or("");
            for (i, tok) in file.code.iter().enumerate() {
                if tok.kind != TokenKind::Ident {
                    continue;
                }
                let Some(gi) = file.items.enclosing_fn(i) else {
                    continue;
                };
                let caller = (fi, gi);
                let w = tok.text(file.src);
                // Direct sink sites (same shapes as the token rules).
                if (w == "Instant" && text(i + 1) == "::" && text(i + 2) == "now")
                    || w == "SystemTime"
                {
                    direct.entry(caller).or_default().push(Sink::WallClock);
                }
                if w == "thread" && text(i + 1) == "::" && matches!(text(i + 2), "spawn" | "scope")
                {
                    direct.entry(caller).or_default().push(Sink::Threads);
                }
                // Call sites: `name(` that is not a declaration/keyword.
                if text(i + 1) != "(" || NON_CALL_IDENTS.contains(&w) {
                    continue;
                }
                if i > 0 && text(i - 1) == "fn" {
                    continue;
                }
                if let Some(callee) = self.resolve_call(fi, i) {
                    if callee != caller {
                        calls.entry(caller).or_default().push((callee, i));
                    }
                }
            }
        }
        self.calls = calls;
        self.direct = direct;
    }

    /// Resolves the call whose name token is `code[i]` in file `fi`, or
    /// `None` when the target is ambiguous/unknown (opaque).
    fn resolve_call(&self, fi: usize, i: usize) -> Option<FnKey> {
        let file = &self.files[fi];
        let text = |j: usize| file.code.get(j).map(|t| t.text(file.src)).unwrap_or("");
        let name = text(i);
        let caller_gi = file.items.enclosing_fn(i);

        if i > 0 && text(i - 1) == "::" {
            // Qualified call: collect the path segments before the name.
            let mut segs: Vec<&str> = Vec::new();
            let mut j = i;
            while j >= 2 && text(j - 1) == "::" {
                let seg = text(j - 2);
                if file.code[j - 2].kind != TokenKind::Ident {
                    break;
                }
                segs.push(seg);
                j -= 2;
            }
            // Generic turbofish (`Vec::<u8>::new`) or malformed: opaque.
            let last = *segs.first()?;
            return self.resolve_qualified(fi, caller_gi, last, name);
        }
        if i > 0 && text(i - 1) == "." {
            // Method call on an unknown receiver.
            let self_recv = i >= 2 && text(i - 2) == "self" && text(i - 3) != ".";
            return self.resolve_method(fi, caller_gi, name, self_recv);
        }
        // Bare call: free functions only.
        self.resolve_bare(fi, name)
    }

    /// `Owner::name(…)` / `module::name(…)` / `self::name(…)`.
    fn resolve_qualified(
        &self,
        fi: usize,
        caller_gi: Option<usize>,
        qualifier: &str,
        name: &str,
    ) -> Option<FnKey> {
        let file = &self.files[fi];
        let q: &str = match qualifier {
            "Self" => {
                let gi = caller_gi?;
                file.items.fns[gi].owner.as_deref()?
            }
            "self" | "crate" | "super" => {
                // Crate-local free function.
                return self.unique(name, |k| {
                    self.files[k.0].krate == file.krate && self.fn_of(k).owner.is_none()
                });
            }
            other => file.items.resolve_alias(other),
        };
        // Associated function of a workspace type…
        let owned = self.unique(name, |k| {
            self.fn_of(k).owner.as_deref() == Some(q)
                && self.linkable(file.krate, self.files[k.0].krate)
        });
        if owned.is_some() {
            return owned;
        }
        // …or a free function in a module whose file stem / inline mod
        // path matches the qualifier.
        self.unique(name, |k| {
            let def_file = &self.files[k.0];
            let f = self.fn_of(k);
            f.owner.is_none()
                && self.linkable(file.krate, def_file.krate)
                && (file_stem(def_file.rel_path) == q || f.module.iter().any(|m| m == q))
        })
    }

    /// `x.name(…)`: unique method match, same-owner first for `self.`.
    fn resolve_method(
        &self,
        fi: usize,
        caller_gi: Option<usize>,
        name: &str,
        self_recv: bool,
    ) -> Option<FnKey> {
        let file = &self.files[fi];
        if self_recv {
            if let Some(owner) = caller_gi.and_then(|gi| file.items.fns[gi].owner.as_deref()) {
                let same_owner = self.unique(name, |k| {
                    self.fn_of(k).owner.as_deref() == Some(owner)
                        && self.files[k.0].krate == file.krate
                });
                if same_owner.is_some() {
                    return same_owner;
                }
            }
        }
        self.unique(name, |k| {
            self.fn_of(k).owner.is_some() && self.linkable(file.krate, self.files[k.0].krate)
        })
    }

    /// `name(…)`: same-file, then same-crate, then dep-visible unique.
    /// The first level with any candidate decides — two same-file
    /// definitions are ambiguous, not an excuse to widen the search.
    fn resolve_bare(&self, fi: usize, name: &str) -> Option<FnKey> {
        let file = &self.files[fi];
        let free = |k: &FnKey| self.fn_of(*k).owner.is_none();
        let levels: [&dyn Fn(&FnKey) -> bool; 3] = [
            &|k| k.0 == fi && free(k),
            &|k| self.files[k.0].krate == file.krate && free(k),
            &|k| self.linkable(file.krate, self.files[k.0].krate) && free(k),
        ];
        for filter in levels {
            let mut hits = self
                .by_name
                .get(name)
                .map(|v| v.iter().filter(|k| filter(k)))
                .into_iter()
                .flatten();
            if let Some(first) = hits.next() {
                return hits.next().is_none().then_some(*first);
            }
        }
        None
    }

    /// The single definition of `name` passing `filter`, if exactly one.
    fn unique(&self, name: &str, filter: impl Fn(FnKey) -> bool) -> Option<FnKey> {
        let mut hits = self
            .by_name
            .get(name)?
            .iter()
            .copied()
            .filter(|&k| filter(k));
        let first = hits.next()?;
        hits.next().is_none().then_some(first)
    }

    fn fn_of(&self, k: FnKey) -> &crate::items::FnItem {
        &self.files[k.0].items.fns[k.1]
    }

    /// Display name for a function in chains: `Owner::name` or `name`.
    fn display(&self, k: FnKey) -> String {
        let f = self.fn_of(k);
        match &f.owner {
            Some(o) => format!("{o}::{}", f.name),
            None => f.name.clone(),
        }
    }

    /// Emits transitive-wall-clock / transitive-threads findings at the
    /// call sites through which a non-sink function reaches a sink.
    fn transitive_findings(&self, out: &mut Vec<(usize, RawFinding)>) {
        for sink in [Sink::WallClock, Sink::Threads] {
            // Reverse BFS from direct-sink fns; `via` records each
            // reacher's first hop toward the sink for the message chain.
            let mut reaches: BTreeSet<FnKey> = BTreeSet::new();
            let mut via: BTreeMap<FnKey, FnKey> = BTreeMap::new();
            let mut frontier: Vec<FnKey> = self
                .direct
                .iter()
                .filter(|(_, sinks)| sinks.contains(&sink))
                .map(|(&k, _)| k)
                .collect();
            reaches.extend(frontier.iter().copied());
            while let Some(target) = frontier.pop() {
                for (&caller, callees) in &self.calls {
                    if reaches.contains(&caller) {
                        continue;
                    }
                    if callees.iter().any(|&(callee, _)| callee == target) {
                        reaches.insert(caller);
                        via.insert(caller, target);
                        frontier.push(caller);
                    }
                }
            }
            // A direct sink already fires the token-level rule; the
            // transitive rule covers the *callers*.
            for (&caller, callees) in &self.calls {
                if self.direct.get(&caller).is_some_and(|s| s.contains(&sink)) {
                    continue;
                }
                if !reaches.contains(&caller) {
                    continue;
                }
                let mut seen_lines: BTreeSet<u32> = BTreeSet::new();
                for &(callee, tok) in callees {
                    if !reaches.contains(&callee) {
                        continue;
                    }
                    let t = &self.files[caller.0].code[tok];
                    if !seen_lines.insert(t.line) {
                        continue;
                    }
                    let mut chain = vec![self.display(callee)];
                    let mut cur = callee;
                    while let Some(&next) = via.get(&cur) {
                        chain.push(self.display(next));
                        cur = next;
                    }
                    out.push((
                        caller.0,
                        RawFinding {
                            rule: sink.rule(),
                            line: t.line,
                            col: t.col,
                            detail: Some(format!(
                                "`{}` reaches {} via {}",
                                self.display(caller),
                                sink.label(),
                                chain.join(" -> "),
                            )),
                        },
                    ));
                }
            }
        }
    }

    /// Duplicate `derive`/`derive_indexed` labels on one receiver inside
    /// one function: bit-identical aliased RNG streams.
    fn rng_collision_findings(&self, out: &mut Vec<(usize, RawFinding)>) {
        for (fi, file) in self.files.iter().enumerate() {
            let text = |i: usize| file.code.get(i).map(|t| t.text(file.src)).unwrap_or("");
            // (enclosing fn, receiver, indexed?, index literal, label) → first line
            let mut seen: BTreeMap<(usize, String, bool, String, String), u32> = BTreeMap::new();
            for (i, tok) in file.code.iter().enumerate() {
                if tok.kind != TokenKind::Ident {
                    continue;
                }
                let w = tok.text(file.src);
                let indexed = match w {
                    "derive" => false,
                    "derive_indexed" => true,
                    _ => continue,
                };
                if i == 0 || text(i - 1) != "." || text(i + 1) != "(" {
                    continue;
                }
                let Some(gi) = file.items.enclosing_fn(i) else {
                    continue;
                };
                // First argument must be a string literal (the label);
                // dynamic labels are opaque.
                let label_tok = i + 2;
                if file.code.get(label_tok).map(|t| t.kind) != Some(TokenKind::StrLit) {
                    continue;
                }
                // For derive_indexed, a literal index makes the stream
                // key fully static; a runtime index is the intended
                // disambiguator and exempts the site.
                let mut index_lit = String::new();
                if indexed {
                    if text(label_tok + 1) != "," {
                        continue;
                    }
                    let idx_tok = label_tok + 2;
                    let closes = text(idx_tok + 1) == ")";
                    if !(closes
                        && file.code.get(idx_tok).map(|t| t.kind) == Some(TokenKind::NumLit))
                    {
                        continue;
                    }
                    index_lit = text(idx_tok).to_string();
                }
                // The parent stream: the `.`-chain receiver before the
                // call. Anything but plain `ident(.ident)*` (or `self.…`)
                // is opaque.
                let Some(receiver) = receiver_chain(file.src, file.code, i - 1) else {
                    continue;
                };
                let label = text(label_tok).to_string();
                let key = (gi, receiver.clone(), indexed, index_lit, label.clone());
                match seen.get(&key) {
                    None => {
                        seen.insert(key, tok.line);
                    }
                    Some(&first) => {
                        out.push((
                            fi,
                            RawFinding {
                                rule: Rule::RngStreamCollision,
                                line: tok.line,
                                col: tok.col,
                                detail: Some(format!(
                                    "label {label} on parent `{receiver}` already used at line \
                                     {first}; identical (parent, label) pairs alias the same \
                                     stream bit-for-bit",
                                )),
                            },
                        ));
                    }
                }
            }
        }
    }

    /// `fn merge*` / `fn export*` / `fn fingerprint*` over a workspace
    /// struct with named fields must contain an exhaustive `Self { … }`
    /// (or `TypeName { … }`) binding with no `..` rest.
    fn exhaustive_destructure_findings(&self, out: &mut Vec<(usize, RawFinding)>) {
        for (fi, file) in self.files.iter().enumerate() {
            for f in &file.items.fns {
                let is_merge_like = f.name.starts_with("merge") || f.name.starts_with("export");
                let is_fingerprint = f.name.starts_with("fingerprint");
                if !is_merge_like && !is_fingerprint {
                    continue;
                }
                let Some((open, close)) = f.body else {
                    continue;
                };
                // The struct whose fields must all be bound: the impl
                // target for merge/export, the impl target or the return
                // type for fingerprint constructors.
                let candidates: Vec<&str> = if is_merge_like {
                    f.owner.as_deref().into_iter().collect()
                } else {
                    f.owner
                        .as_deref()
                        .into_iter()
                        .chain(f.ret.as_deref())
                        .collect()
                };
                let Some(struct_name) = candidates.iter().copied().find(|n| {
                    self.lookup_struct(file.krate, n)
                        .is_some_and(|s| s.named_fields)
                }) else {
                    continue; // tuple struct, foreign type, plain value: opaque
                };
                match scan_destructure(file.src, file.code, open, close, struct_name) {
                    DestructureState::Exhaustive => {}
                    DestructureState::Missing => out.push((
                        fi,
                        RawFinding {
                            rule: Rule::ExhaustiveDestructure,
                            line: f.line,
                            col: f.col,
                            detail: Some(format!(
                                "`{}` over struct `{struct_name}` never binds its fields with \
                                 `let Self {{ … }}`, so a new field silently escapes the \
                                 merge/export/fingerprint path",
                                f.name,
                            )),
                        },
                    )),
                    DestructureState::RestPattern(line, col) => out.push((
                        fi,
                        RawFinding {
                            rule: Rule::ExhaustiveDestructure,
                            line,
                            col,
                            detail: Some(format!(
                                "`..` rest pattern in `{}` defeats exhaustiveness over \
                                 `{struct_name}`: a new field no longer breaks the build here",
                                f.name,
                            )),
                        },
                    )),
                }
            }
        }
    }

    /// The workspace struct `name` visible from `krate`: same-crate
    /// definition first, then a workspace-unique one.
    fn lookup_struct(&self, krate: &str, name: &str) -> Option<&crate::items::StructItem> {
        let defs = self.struct_by_name.get(name)?;
        let same_crate: Vec<_> = defs
            .iter()
            .filter(|(fi, _)| self.files[*fi].krate == krate)
            .collect();
        let pick = match same_crate.as_slice() {
            [one] => **one,
            [] if defs.len() == 1 => defs[0],
            _ => return None, // ambiguous: opaque
        };
        Some(&self.files[pick.0].items.structs[pick.1])
    }
}

/// Module name a file defines: the stem, or the directory name for
/// `mod.rs` (`crates/relaynet/src/network/mod.rs` → `network`).
fn file_stem(rel_path: &str) -> &str {
    let mut parts = rel_path.rsplit('/');
    let file = parts.next().unwrap_or(rel_path);
    let stem = file.strip_suffix(".rs").unwrap_or(file);
    if stem == "mod" {
        parts.next().unwrap_or(stem)
    } else {
        stem
    }
}

/// `a.b.c` receiver chain ending at the `.` token `dot`, or `None` when
/// the receiver is an expression (call result, index, …).
fn receiver_chain(src: &str, code: &[Token], dot: usize) -> Option<String> {
    let text = |i: usize| code.get(i).map(|t| t.text(src)).unwrap_or("");
    let mut parts: Vec<&str> = Vec::new();
    let mut j = dot; // points at the `.`
    loop {
        if j == 0 {
            return None;
        }
        let prev = j - 1;
        if code[prev].kind != TokenKind::Ident {
            return None;
        }
        parts.push(text(prev));
        if prev == 0 {
            break;
        }
        if text(prev - 1) == "." {
            j = prev - 1;
            continue;
        }
        break;
    }
    parts.reverse();
    Some(parts.join("."))
}

enum DestructureState {
    Exhaustive,
    Missing,
    /// Line/col of the offending `..`.
    RestPattern(u32, u32),
}

/// Scans a fn body for `Self { … }` / `Name { … }` groups and decides
/// whether at least one is an exhaustive binding. `..` counts as a rest
/// pattern only at the group's top nesting level and only in pattern
/// position (after `{` or `,`), so ranges like `(0..n)` inside field
/// expressions stay invisible.
fn scan_destructure(
    src: &str,
    code: &[Token],
    open: usize,
    close: usize,
    struct_name: &str,
) -> DestructureState {
    let text = |i: usize| code.get(i).map(|t| t.text(src)).unwrap_or("");
    let mut first_rest: Option<(u32, u32)> = None;
    let mut i = open + 1;
    while i < close {
        let w = text(i);
        if code[i].kind == TokenKind::Ident
            && (w == "Self" || w == struct_name)
            && text(i + 1) == "{"
        {
            let gopen = i + 1;
            let mut depth = 0i32;
            let mut rest: Option<(u32, u32)> = None;
            let mut j = gopen;
            while j <= close {
                match text(j) {
                    "{" | "(" | "[" => depth += 1,
                    "}" | ")" | "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    ".." | "..="
                        if depth == 1 && rest.is_none() && matches!(text(j - 1), "{" | ",") =>
                    {
                        rest = Some((code[j].line, code[j].col));
                    }
                    _ => {}
                }
                j += 1;
            }
            match rest {
                None => return DestructureState::Exhaustive,
                Some(at) => {
                    first_rest.get_or_insert(at);
                    i = j;
                }
            }
        }
        i += 1;
    }
    match first_rest {
        Some((line, col)) => DestructureState::RestPattern(line, col),
        None => DestructureState::Missing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items;
    use crate::lexer::code_tokens;

    struct Owned {
        rel_path: String,
        krate: String,
        src: String,
        code: Vec<Token>,
        items: ItemIndex,
    }

    fn prep(rel_path: &str, src: &str) -> Owned {
        let code = code_tokens(src);
        let items = items::parse(src, &code);
        Owned {
            rel_path: rel_path.to_string(),
            krate: crate::policy::classify(rel_path).krate,
            src: src.to_string(),
            code,
            items,
        }
    }

    fn run(files: &[Owned], deps: Option<&DepMap>) -> Vec<(usize, Rule, u32)> {
        let views: Vec<FileView<'_>> = files
            .iter()
            .map(|o| FileView {
                rel_path: &o.rel_path,
                krate: &o.krate,
                src: &o.src,
                code: &o.code,
                items: &o.items,
            })
            .collect();
        analyze(&views, deps)
            .into_iter()
            .map(|(fi, f)| (fi, f.rule, f.line))
            .collect()
    }

    #[test]
    fn transitive_reachability_fires_at_the_call_site() {
        let f = prep(
            "crates/relaynet/src/x.rs",
            "\
fn stamp() -> u64 { let _ = std::time::Instant::now(); 0 }
fn caller() -> u64 { stamp() }
fn upper() -> u64 { caller() + 1 }
",
        );
        let got = run(&[f], None);
        // `stamp` is a direct sink (token rule, not transitive); the
        // chain above it fires once per caller.
        assert_eq!(
            got,
            vec![
                (0, Rule::TransitiveWallClock, 2),
                (0, Rule::TransitiveWallClock, 3)
            ]
        );
    }

    #[test]
    fn ambiguous_names_are_opaque() {
        let f = prep(
            "crates/simcore/src/x.rs",
            "\
struct A; struct B;
impl A { fn execute(&self) { std::thread::spawn(|| ()); } }
impl B { fn execute(&self) {} }
fn go(x: &B) { x.execute(); }
",
        );
        let got = run(&[f], None);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn cross_crate_edges_need_a_declared_dependency() {
        let callee = prep(
            "crates/bench/src/clockwork.rs",
            "pub fn tick() -> u64 { let t = std::time::Instant::now(); 0 }",
        );
        let caller = prep(
            "crates/relaynet/src/y.rs",
            "pub fn wraps() -> u64 { tick() }",
        );
        // relaynet does not depend on cs-bench: no edge, no finding.
        let mut deps = DepMap::new();
        deps.insert("relaynet".into(), ["simcore".to_string()].into());
        deps.insert("cs-bench".into(), BTreeSet::new());
        let got = run(&[callee, caller], Some(&deps));
        assert!(got.is_empty(), "{got:?}");

        // With the dependency declared, the edge exists and fires.
        let callee = prep(
            "crates/simcore/src/clockwork.rs",
            "pub fn tick() -> u64 { let t = std::time::Instant::now(); 0 }",
        );
        let caller = prep(
            "crates/relaynet/src/y.rs",
            "pub fn wraps() -> u64 { tick() }",
        );
        let got = run(&[callee, caller], Some(&deps));
        assert_eq!(got, vec![(1, Rule::TransitiveWallClock, 1)]);
    }

    #[test]
    fn rng_collisions_key_on_parent_and_label() {
        let f = prep(
            "crates/relaynet/src/z.rs",
            "\
fn build(master: &SimRng, other: &SimRng) {
    let a = master.derive(\"alpha\");
    let b = master.derive(\"beta\");
    let c = other.derive(\"alpha\");
    let d = master.derive(\"alpha\");
}
",
        );
        let got = run(&[f], None);
        assert_eq!(got, vec![(0, Rule::RngStreamCollision, 5)]);
    }

    #[test]
    fn sibling_fns_and_indexed_streams_do_not_collide() {
        let f = prep(
            "crates/relaynet/src/z.rs",
            "\
fn one(master: &SimRng) { let a = master.derive(\"shared\"); }
fn two(master: &SimRng) { let a = master.derive(\"shared\"); }
fn idx(master: &SimRng, i: u64) {
    let a = master.derive_indexed(\"relay\", 0);
    let b = master.derive_indexed(\"relay\", 1);
    let c = master.derive_indexed(\"relay\", i);
    let d = master.derive_indexed(\"relay\", i);
}
",
        );
        let got = run(&[f], None);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn indexed_literal_duplicates_do_collide() {
        let f = prep(
            "crates/relaynet/src/z.rs",
            "\
fn idx(master: &SimRng) {
    let a = master.derive_indexed(\"relay\", 0);
    let b = master.derive_indexed(\"relay\", 0);
}
",
        );
        let got = run(&[f], None);
        assert_eq!(got, vec![(0, Rule::RngStreamCollision, 3)]);
    }

    #[test]
    fn merge_without_destructure_fires_on_the_fn_line() {
        let f = prep(
            "crates/simstats/src/m.rs",
            "\
pub struct Agg { total: u64, count: u64 }
impl Agg {
    pub fn merge(&mut self, other: &Agg) {
        self.total += other.total;
        self.count += other.count;
    }
}
",
        );
        let got = run(&[f], None);
        assert_eq!(got, vec![(0, Rule::ExhaustiveDestructure, 3)]);
    }

    #[test]
    fn destructured_merge_is_clean_and_ranges_are_not_rest_patterns() {
        let f = prep(
            "crates/simstats/src/m.rs",
            "\
pub struct Agg { total: u64, count: u64 }
impl Agg {
    pub fn merge(&mut self, other: &Agg) {
        let Agg { total, count } = *other;
        self.total += total;
        self.count += count;
    }
}
pub struct Fp { ids: Vec<u64> }
pub fn fingerprint(n: u64) -> Fp {
    Fp { ids: (0..n).collect() }
}
",
        );
        let got = run(&[f], None);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn rest_pattern_fires_on_the_dotdot_line() {
        let f = prep(
            "crates/simstats/src/m.rs",
            "\
pub struct Agg { total: u64, count: u64 }
impl Agg {
    pub fn merge(&mut self, other: &Agg) {
        let Agg { total, .. } = *other;
        self.total += total;
    }
}
",
        );
        let got = run(&[f], None);
        assert_eq!(got, vec![(0, Rule::ExhaustiveDestructure, 4)]);
    }

    #[test]
    fn tuple_and_foreign_structs_are_opaque() {
        let f = prep(
            "crates/simstats/src/m.rs",
            "\
pub struct Pair(u64, u64);
impl Pair {
    pub fn merge(&mut self, other: &Pair) { self.0 += other.0; }
}
impl External {
    pub fn merge(&mut self, other: &External) { self.join(other); }
}
",
        );
        let got = run(&[f], None);
        assert!(got.is_empty(), "{got:?}");
    }
}
