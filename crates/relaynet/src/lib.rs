//! # relaynet — a network-level model of the Tor overlay
//!
//! The reproduction's stand-in for `nstor` (the ns-3-based Tor model the
//! paper evaluates on): clients, relays, and servers exchanging fixed-size
//! cells over simulated links, with
//!
//! * telescoping circuit construction (CREATE / EXTEND / EXTENDED),
//! * leaky-pipe recognition via per-hop onion layers,
//! * per-hop windowed transports driven by forwarding **feedback**
//!   (the BackTap substrate CircuitStart plugs into),
//! * multi-stream client/server applications with per-flow
//!   time-to-last-byte accounting ([`workload`]): several streams
//!   multiplexed per circuit, staggered and bursty arrival processes,
//!   and circuit churn (teardown + rebuild with slot reclamation),
//! * relay directories with sampled bandwidths and **pluggable path
//!   selection** ([`selection`]): a [`selection::PathSelection`] policy
//!   seam with uniform, Tor-style bandwidth-weighted, latency-aware,
//!   and congestion-aware policies over live load telemetry,
//! * the two evaluation topologies (explicit path, nstor-style star),
//!   and
//! * the **async relay runtime** ([`runtime`]): sharded experiments
//!   run across a work-stealing thread pool behind the
//!   `simcore::exec::Executor` seam, with the deterministic
//!   single-threaded `World` as the bit-exact oracle, plus the stage
//!   contracts as one-task-per-relay message passing over bounded
//!   channels.
//!
//! The congestion-control algorithm is injected through
//! [`node::CcFactory`], so this crate knows nothing about CircuitStart
//! itself — the `circuitstart` crate supplies the paper's controller, and
//! [`builder::baseline_factory`] supplies the paper's baseline.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod circuit;
pub mod directory;
pub mod event;
pub mod ids;
pub mod network;
pub mod node;
pub mod pool;
pub mod router;
pub mod runtime;
pub mod sampler;
pub mod scheduler;
pub mod selection;
pub mod wire;
pub mod workload;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::builder::{
        baseline_factory, fixed_window_factory, jumpstart_factory, unlimited_factory, PathHandles,
        PathScenario, StarScenario,
    };
    pub use crate::circuit::{CircuitInfo, CircuitResult};
    pub use crate::directory::{Directory, DirectoryConfig, EpochDelta, RelaySpec};
    pub use crate::event::{TimerKind, TorEvent};
    pub use crate::ids::{CircId, Direction, OverlayId};
    pub use crate::network::{
        fill_pattern, fill_pattern_extend, fill_pattern_into, verify_fill_pattern, TorNetwork,
        WorldConfig, WorldStats,
    };
    pub use crate::node::{CcFactory, HopCtx, NodeRole};
    pub use crate::pool::PayloadPool;
    pub use crate::router::Router;
    pub use crate::runtime::{
        fingerprint, FactoryMaker, ShardReport, ShardedStar, StagePipeline, StageReport, StatsKind,
        SweepReport, WorldFingerprint,
    };
    pub use crate::sampler::{FenwickSampler, LinearSampler, Sampler, SamplerKind};
    pub use crate::scheduler::LinkScheduler;
    pub use crate::selection::{
        all_policies, BandwidthWeighted, CongestionAware, DirectoryView, LatencyAware,
        PathSelection, SelectionEngine, SelectionPolicy, Uniform,
    };
    pub use crate::wire::{FramePayload, WireFrame};
    pub use crate::workload::{
        ArrivalSpec, ChurnSpec, CircuitWorkload, EpochSchedule, EpochSpec, FaultSchedule,
        FaultSpec, FlowId, FlowState, LinkStall, StreamSpec, WorkloadSpec,
    };
}

pub use builder::{
    baseline_factory, fixed_window_factory, jumpstart_factory, unlimited_factory, PathHandles,
    PathScenario, StarScenario,
};
pub use circuit::{CircuitInfo, CircuitResult};
pub use directory::{Directory, DirectoryConfig, EpochDelta, RelaySpec};
pub use event::{TimerKind, TorEvent};
pub use ids::{CircId, Direction, OverlayId};
pub use network::{
    fill_pattern, fill_pattern_into, verify_fill_pattern, TorNetwork, WorldConfig, WorldStats,
};
pub use node::{CcFactory, HopCtx, NodeRole};
pub use pool::PayloadPool;
pub use router::Router;
pub use runtime::{
    fingerprint, FactoryMaker, ShardReport, ShardedStar, StagePipeline, StageReport, StatsKind,
    SweepReport, WorldFingerprint,
};
pub use sampler::{FenwickSampler, LinearSampler, Sampler, SamplerKind};
pub use scheduler::LinkScheduler;
pub use selection::{
    all_policies, BandwidthWeighted, CongestionAware, DirectoryView, LatencyAware, PathSelection,
    SelectionEngine, SelectionPolicy, Uniform,
};
pub use wire::{FramePayload, WireFrame};
pub use workload::{
    ArrivalSpec, ChurnSpec, CircuitWorkload, EpochSchedule, EpochSpec, FaultSchedule, FaultSpec,
    FlowId, FlowState, LinkStall, StreamSpec, WorkloadSpec,
};
