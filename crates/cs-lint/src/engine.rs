//! The scan pipeline: lex → split code/comments → parse `allow`
//! annotations → mark test regions → run rules → scope + suppress.
//!
//! # Annotation grammar (DESIGN.md §14)
//!
//! ```text
//! // cs-lint: allow(<rule-name>, reason = "<non-empty text>")
//! ```
//!
//! The comment must be **alone on its line** and suppresses findings of
//! that rule on the next line holding any code token (doc comments and
//! blank lines in between are skipped, so an annotation can sit above a
//! documented item). Stacked annotations all bind to that same line. A
//! `cs-lint:` comment that does not parse — unknown rule, missing or
//! empty reason, trailing position — is itself reported as
//! `malformed-annotation`, which cannot be suppressed.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use crate::lexer::{self, Token, TokenKind};
use crate::policy;
use crate::rules::{self, Rule};

/// Rule name used for unparseable `cs-lint:` comments.
pub const MALFORMED: &str = "malformed-annotation";

/// One reported violation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    pub line: u32,
    pub col: u32,
    /// Kebab-case rule name.
    pub rule: String,
    pub message: String,
    /// The source line the finding points at, trimmed — context for the
    /// human report and for `--fix-annotations` indentation.
    pub snippet: String,
}

/// A parsed, well-formed allow annotation.
struct Allow {
    rule: Rule,
    /// Line the annotation comment sits on.
    line: u32,
}

/// Scans one file's source. `rel_path` drives policy scoping and is
/// echoed into findings.
pub fn scan_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let ctx = policy::classify(rel_path);
    let tokens = lexer::lex(src);
    let (code, comments): (Vec<Token>, Vec<Token>) = tokens
        .into_iter()
        .partition(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment));

    let mut findings: Vec<Finding> = Vec::new();

    // Lines that hold at least one code token, for annotation binding.
    let code_lines: BTreeSet<u32> = code.iter().map(|t| t.line).collect();
    let mut allows: Vec<Allow> = Vec::new();
    for c in &comments {
        if c.kind != TokenKind::LineComment {
            continue;
        }
        let text = c.text(src);
        let Some(rest) = annotation_body(text) else {
            continue;
        };
        let alone = !code_lines.contains(&c.line);
        match (parse_allow(rest), alone) {
            (Some(rule), true) => allows.push(Allow { rule, line: c.line }),
            (Some(_), false) => findings.push(Finding {
                path: rel_path.to_string(),
                line: c.line,
                col: c.col,
                rule: MALFORMED.to_string(),
                message: "annotation must be alone on the line preceding the finding, not \
                          trailing code"
                    .to_string(),
                snippet: line_snippet(src, c.line),
            }),
            (None, _) => findings.push(Finding {
                path: rel_path.to_string(),
                line: c.line,
                col: c.col,
                rule: MALFORMED.to_string(),
                message: format!(
                    "cannot parse annotation; expected `// cs-lint: allow(<rule>, reason = \
                     \"...\")` with a known rule and non-empty reason; rules: {}",
                    rules::ALL_RULES
                        .iter()
                        .map(|r| r.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                snippet: line_snippet(src, c.line),
            }),
        }
    }

    // Each annotation suppresses its rule on the next code line.
    let suppressed: BTreeSet<(Rule, u32)> = allows
        .iter()
        .filter_map(|a| {
            code_lines
                .range(a.line + 1..)
                .next()
                .map(|&target| (a.rule, target))
        })
        .collect();

    let test_regions = test_regions(src, &code);
    let in_test = |line: u32| test_regions.iter().any(|&(a, b)| (a..=b).contains(&line));

    for raw in rules::detect(src, &code) {
        let test_code = ctx.kind == policy::TargetKind::TestFile || in_test(raw.line);
        if !policy::rule_applies(raw.rule, &ctx, test_code) {
            continue;
        }
        if suppressed.contains(&(raw.rule, raw.line)) {
            continue;
        }
        findings.push(Finding {
            path: rel_path.to_string(),
            line: raw.line,
            col: raw.col,
            rule: raw.rule.name().to_string(),
            message: raw.rule.message().to_string(),
            snippet: line_snippet(src, raw.line),
        });
    }

    findings.sort_by(|a, b| (a.line, a.col, &a.rule).cmp(&(b.line, b.col, &b.rule)));
    findings
}

/// Returns the text after a `cs-lint:` marker in a line comment, or
/// `None` when the comment is not an annotation at all.
fn annotation_body(comment: &str) -> Option<&str> {
    let body = comment
        .trim_start_matches('/')
        .trim_start_matches('!')
        .trim_start();
    body.strip_prefix("cs-lint:").map(str::trim_start)
}

/// Parses `allow(<rule>, reason = "<non-empty>")`. Returns the rule on
/// success.
fn parse_allow(body: &str) -> Option<Rule> {
    let inner = body.strip_prefix("allow")?.trim_start().strip_prefix('(')?;
    let inner = inner.trim_end().strip_suffix(')')?;
    let (rule_name, rest) = inner.split_once(',')?;
    let rule = Rule::from_name(rule_name.trim())?;
    let reason = rest
        .trim()
        .strip_prefix("reason")?
        .trim_start()
        .strip_prefix('=')?;
    let reason = reason.trim().strip_prefix('"')?.strip_suffix('"')?;
    (!reason.trim().is_empty()).then_some(rule)
}

/// Line ranges (inclusive) of `#[cfg(test)]` / `#[test]` items. Token
/// scan: a `#[...]` attribute whose idents include `test` (and not
/// `not`, so `#[cfg(not(test))]` stays production code) marks the next
/// brace-delimited item; a `;` before any `{` means the attribute
/// decorated a braceless item and no region is produced.
fn test_regions(src: &str, code: &[Token]) -> Vec<(u32, u32)> {
    let text = |i: usize| code[i].text(src);
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 1 < code.len() {
        if !(text(i) == "#" && text(i + 1) == "[") {
            i += 1;
            continue;
        }
        // Find the matching `]`.
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut saw_test = false;
        let mut saw_not = false;
        while j < code.len() {
            match text(j) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "test" => saw_test = true,
                "not" => saw_not = true,
                _ => {}
            }
            j += 1;
        }
        if !saw_test || saw_not {
            i = j;
            continue;
        }
        // Attribute marks a test item: find its body's `{`, bailing at a
        // same-level `;` (braceless item).
        let mut k = j + 1;
        while k < code.len() && text(k) != "{" && text(k) != ";" {
            k += 1;
        }
        if k < code.len() && text(k) == "{" {
            let open_line = code[k].line;
            let mut brace = 0usize;
            while k < code.len() {
                match text(k) {
                    "{" => brace += 1,
                    "}" => {
                        brace -= 1;
                        if brace == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            let close_line = if k < code.len() {
                code[k].line
            } else {
                u32::MAX
            };
            regions.push((open_line, close_line));
        }
        i = k;
    }
    regions
}

/// The 1-based `line` of `src`, trimmed; empty string when out of range.
fn line_snippet(src: &str, line: u32) -> String {
    src.lines()
        .nth(line as usize - 1)
        .unwrap_or("")
        .trim()
        .to_string()
}

/// Raw (untrimmed) source line, for `--fix-annotations` indentation.
pub fn raw_line(src: &str, line: u32) -> String {
    src.lines().nth(line as usize - 1).unwrap_or("").to_string()
}

/// Result of a workspace scan.
pub struct ScanReport {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git"];

/// Path suffix of the known-bad lint fixture corpus — scanning it would
/// (correctly) light up every rule.
const FIXTURES_DIR: &str = "crates/cs-lint/tests/fixtures";

/// Walks the workspace rooted at `root` and scans every `.rs` file,
/// deterministically ordered.
pub fn scan_workspace(root: &Path) -> Result<ScanReport, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for file in &files {
        let rel = rel_unix(root, file);
        let src = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        findings.extend(scan_source(&rel, &src));
    }
    findings
        .sort_by(|a, b| (&a.path, a.line, a.col, &a.rule).cmp(&(&b.path, b.line, b.col, &b.rule)));
    Ok(ScanReport {
        findings,
        files_scanned: files.len(),
    })
}

fn rel_unix(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().to_string();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            if rel_unix(root, &path) == FIXTURES_DIR {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(findings: &[Finding]) -> Vec<(String, u32)> {
        findings.iter().map(|f| (f.rule.clone(), f.line)).collect()
    }

    #[test]
    fn allow_suppresses_next_code_line_only() {
        let src = "\
// cs-lint: allow(nondeterministic-iteration, reason = \"membership only\")
use std::collections::HashSet;
use std::collections::HashMap;
";
        let f = scan_source("crates/relaynet/src/x.rs", src);
        assert_eq!(
            rules_of(&f),
            vec![("nondeterministic-iteration".to_string(), 3)]
        );
    }

    #[test]
    fn allow_skips_doc_comments_between() {
        let src = "\
// cs-lint: allow(nondeterministic-iteration, reason = \"membership only\")
/// Documented field.
struct S { m: HashSet<u64> }
";
        let f = scan_source("crates/relaynet/src/x.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn stacked_allows_bind_to_same_line() {
        let src = "\
// cs-lint: allow(nondeterministic-iteration, reason = \"fixture\")
// cs-lint: allow(no-bare-unwrap-in-lib, reason = \"fixture\")
fn f(m: HashMap<u8, u8>) { m.get(&1).unwrap(); }
";
        let f = scan_source("crates/relaynet/src/x.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn wrong_rule_does_not_suppress() {
        let src = "\
// cs-lint: allow(wall-clock, reason = \"mismatched\")
use std::collections::HashMap;
";
        let f = scan_source("crates/relaynet/src/x.rs", src);
        assert_eq!(
            rules_of(&f),
            vec![("nondeterministic-iteration".to_string(), 2)]
        );
    }

    #[test]
    fn malformed_annotations_are_findings() {
        for bad in [
            "// cs-lint: allow(unknown-rule, reason = \"x\")",
            "// cs-lint: allow(wall-clock)",
            "// cs-lint: allow(wall-clock, reason = \"\")",
            "// cs-lint: disallow(wall-clock, reason = \"x\")",
        ] {
            let f = scan_source("crates/relaynet/src/x.rs", bad);
            assert_eq!(rules_of(&f), vec![(MALFORMED.to_string(), 1)], "for {bad}");
        }
        // Trailing-position annotation is malformed even when parseable.
        let f = scan_source(
            "crates/relaynet/src/x.rs",
            "let x = 1; // cs-lint: allow(wall-clock, reason = \"x\")",
        );
        assert_eq!(rules_of(&f), vec![(MALFORMED.to_string(), 1)]);
        // A plain comment mentioning the tool is not an annotation.
        let f = scan_source(
            "crates/relaynet/src/x.rs",
            "// run cs-lint before pushing\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn cfg_test_regions_are_exempt_where_policy_says() {
        let src = "\
fn lib_code() { std::thread::spawn(|| {}); }

#[cfg(test)]
mod tests {
    fn helper() { std::thread::spawn(|| {}); }
}
";
        let f = scan_source("crates/simcore/src/chan.rs", src);
        assert_eq!(rules_of(&f), vec![("stray-threads".to_string(), 1)]);
    }

    #[test]
    fn cfg_not_test_is_production() {
        let src = "\
#[cfg(not(test))]
mod prod {
    fn f() { std::thread::spawn(|| {}); }
}
";
        let f = scan_source("crates/simcore/src/chan.rs", src);
        assert_eq!(rules_of(&f), vec![("stray-threads".to_string(), 3)]);
    }

    #[test]
    fn braceless_cfg_test_item_marks_no_region() {
        let src = "\
#[cfg(test)]
use helper::thing;
fn f() { std::thread::spawn(|| {}); }
";
        let f = scan_source("crates/simcore/src/chan.rs", src);
        assert_eq!(rules_of(&f), vec![("stray-threads".to_string(), 3)]);
    }

    #[test]
    fn hash_rule_reaches_cfg_test_in_visible_crates() {
        let src = "\
#[cfg(test)]
mod tests {
    fn f() { let mut s = std::collections::HashSet::new(); s.insert(1); }
}
";
        let f = scan_source("crates/torcell/src/ids.rs", src);
        assert_eq!(
            rules_of(&f),
            vec![("nondeterministic-iteration".to_string(), 3)]
        );
    }
}
