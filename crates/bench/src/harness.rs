//! A minimal benchmark harness (the container image carries no criterion,
//! so the bench targets are plain `harness = false` binaries built on
//! `std::time::Instant`).
//!
//! Protocol per benchmark: calibrate an iteration count that runs for
//! roughly [`TARGET_SAMPLE`], then take [`SAMPLES`] timed samples and
//! report the median, minimum, and mean time per iteration (median is the
//! headline — robust to scheduler noise). `CS_BENCH_FAST=1` cuts the
//! sample count for smoke runs in CI.

use std::time::{Duration, Instant};

/// Wall-clock budget per timed sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(40);
/// Timed samples per benchmark.
const SAMPLES: usize = 11;

fn samples() -> usize {
    if std::env::var_os("CS_BENCH_FAST").is_some() {
        3
    } else {
        SAMPLES
    }
}

/// Formats a per-iteration duration with an adaptive unit.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// The measured result of one benchmark.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Mean nanoseconds per iteration across samples.
    pub mean_ns: f64,
    /// Iterations per timed sample.
    pub iters_per_sample: u64,
}

/// Runs `f` under the measurement protocol and prints one report line.
///
/// Returns the measurement so callers can compute derived figures
/// (throughput, events/s).
pub fn bench<F: FnMut()>(name: &str, f: F) -> Measurement {
    bench_with_samples(name, samples(), f)
}

/// [`bench`] with an explicit sample count (the env-independent core;
/// also what the self-test uses so it never mutates process state).
fn bench_with_samples<F: FnMut()>(name: &str, samples: usize, mut f: F) -> Measurement {
    // Calibration: double the iteration count until one batch fills the
    // target sample duration.
    let mut iters: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = t.elapsed();
        if elapsed >= TARGET_SAMPLE || iters >= 1 << 30 {
            break;
        }
        // Jump close to the target in one step once we have a signal.
        if elapsed > Duration::from_micros(100) {
            let scale = TARGET_SAMPLE.as_secs_f64() / elapsed.as_secs_f64();
            iters = ((iters as f64 * scale).ceil() as u64).clamp(iters + 1, iters * 128);
        } else {
            iters *= 16;
        }
    }

    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let m = Measurement {
        median_ns: per_iter[per_iter.len() / 2],
        min_ns: per_iter[0],
        mean_ns: per_iter.iter().sum::<f64>() / per_iter.len() as f64,
        iters_per_sample: iters,
    };
    println!(
        "{name:<44} median {:>12}   min {:>12}   ({} iters/sample)",
        fmt_ns(m.median_ns),
        fmt_ns(m.min_ns),
        m.iters_per_sample
    );
    m
}

/// Like [`bench`], additionally reporting throughput for `bytes` of
/// payload processed per iteration.
pub fn bench_throughput<F: FnMut()>(name: &str, bytes: u64, f: F) -> Measurement {
    let m = bench(name, f);
    let gib_s = bytes as f64 / m.median_ns; // bytes/ns == GB/s
    println!("{:<44} throughput {gib_s:>10.3} GB/s", "");
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_units() {
        assert!(fmt_ns(5.0).ends_with("ns"));
        assert!(fmt_ns(5.0e3).ends_with("µs"));
        assert!(fmt_ns(5.0e6).ends_with("ms"));
        assert!(fmt_ns(5.0e9).ends_with(" s"));
    }

    #[test]
    fn bench_measures_something() {
        let mut acc = 0u64;
        let m = bench_with_samples("selftest/noop", 3, || {
            acc = acc.wrapping_add(std::hint::black_box(1));
        });
        assert!(m.median_ns > 0.0);
        assert!(m.min_ns <= m.median_ns);
    }
}
