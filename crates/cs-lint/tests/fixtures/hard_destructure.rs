// cs-lint-fixture: path = "crates/torcell/src/hard_destructure.rs"
// Exhaustive bindings in their good forms, plus the shapes that must
// stay opaque: ranges are not rest patterns, tuple structs have no
// field list to enforce, and foreign types are unknowable. ZERO
// findings.

pub struct Tally {
    hits: u64,
    misses: u64,
}

impl Tally {
    pub fn merge(&mut self, other: &Tally) {
        let Tally { hits, misses } = *other;
        self.hits += hits;
        self.misses += misses;
    }

    pub fn export(&self) -> Vec<u64> {
        let Tally { hits, misses } = *self;
        // `(0..hits)` is a range expression, not a `..` rest pattern.
        (0..hits).chain(0..misses).collect()
    }
}

pub struct Digest {
    lo: u64,
    hi: u64,
}

// A fingerprint constructor whose literal names every field IS the
// exhaustive binding — adding a field breaks this line.
pub fn fingerprint_pair(lo: u64, hi: u64) -> Digest {
    Digest { lo, hi }
}

pub struct Pair(u64, u64);

impl Pair {
    // Tuple struct: no named fields, nothing to enforce.
    pub fn merge(&mut self, other: &Pair) {
        self.0 += other.0;
        self.1 += other.1;
    }
}

// Foreign type (not defined anywhere in the scanned set): opaque.
pub fn merge_external(dst: &mut External, src: &External) {
    dst.join(src);
}
