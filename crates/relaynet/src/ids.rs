//! Overlay-level identifiers.

use std::fmt;

/// Index of an overlay node (client, relay, or server) within one
/// [`crate::network::TorNetwork`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OverlayId(pub u32);

impl OverlayId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OverlayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// Global circuit index within one network (simulator bookkeeping; the
/// wire uses link-local [`torcell::CircuitId`]s, one per hop, as in Tor).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CircId(pub u32);

impl CircId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CircId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "circuit#{}", self.0)
    }
}

/// Which way a cell travels along a circuit.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Direction {
    /// Client → server.
    Forward,
    /// Server → client.
    Backward,
}

impl Direction {
    /// The opposite direction.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::Forward => Direction::Backward,
            Direction::Backward => Direction::Forward,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Forward => write!(f, "forward"),
            Direction::Backward => write!(f, "backward"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert_eq!(OverlayId(3).to_string(), "node#3");
        assert_eq!(CircId(5).to_string(), "circuit#5");
        assert_eq!(Direction::Forward.to_string(), "forward");
        assert_eq!(Direction::Backward.to_string(), "backward");
    }

    #[test]
    fn opposite() {
        assert_eq!(Direction::Forward.opposite(), Direction::Backward);
        assert_eq!(Direction::Backward.opposite(), Direction::Forward);
    }

    #[test]
    fn indexing() {
        assert_eq!(OverlayId(7).index(), 7);
        assert_eq!(CircId(9).index(), 9);
    }
}
