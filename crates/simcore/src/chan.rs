//! Bounded channels for the threaded runtime.
//!
//! The async relay runtime ([`crate::exec`]) communicates exclusively
//! through **bounded** queues: a full channel blocks the sender, which is
//! the thread-world analogue of link serialization — a producer that
//! outruns its consumer is throttled by the medium instead of growing an
//! unbounded buffer. The channels here are deliberately simple
//! (`Mutex` + two `Condvar`s, no lock-free cleverness — `unsafe` is
//! forbidden workspace-wide) and instrumented: both endpoints expose a
//! [`ChannelStats`] snapshot counting messages, the occupancy high-water
//! mark, and how often a send actually blocked, so tests can prove that
//! backpressure *engaged* rather than assume it.
//!
//! One implementation serves both shapes the runtime needs:
//!
//! * **SPSC** — one producer, one consumer (a directed link between two
//!   stage tasks). Just don't clone the [`Sender`].
//! * **MPSC** — clone the [`Sender`] for a many-writers inbox (worker
//!   result collection).
//!
//! Disconnection is explicit: when every sender is dropped, `recv`
//! drains the queue and then reports [`RecvError::Disconnected`]; when
//! the receiver is dropped, `send` fails with the rejected value. There
//! is no `select`: a task that must watch two channels polls with
//! [`Receiver::try_recv`] (see `relaynet::runtime`'s stage tasks, which
//! give their feedback inbox strict priority exactly as the
//! `LinkScheduler` does for feedback frames).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Telemetry snapshot of one channel (shared by both endpoints).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Messages accepted into the queue so far.
    pub sent: u64,
    /// Largest queue occupancy ever observed.
    pub high_water_mark: usize,
    /// Number of times a `send` found the channel full and had to block
    /// (each wait-wakeup cycle counts once) — the backpressure events.
    pub blocked_sends: u64,
}

/// Why a blocking receive returned no value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvError {
    /// Every sender is gone and the queue is drained.
    Disconnected,
}

/// Why a non-blocking receive returned no value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue is currently empty but senders remain.
    Empty,
    /// Every sender is gone and the queue is drained.
    Disconnected,
}

/// A send rejected because the receiver is gone; carries the value back.
#[derive(Debug)]
pub struct SendError<T>(pub T);

struct State<T> {
    queue: VecDeque<T>,
    capacity: usize,
    senders: usize,
    receiver_alive: bool,
    stats: ChannelStats,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

/// The sending endpoint. Clone it to make the channel MPSC.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving endpoint (exactly one per channel).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded channel holding at most `capacity` messages.
///
/// # Panics
///
/// Panics if `capacity` is zero — a zero-capacity rendezvous channel is
/// a different synchronization primitive and nothing here needs it.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "bounded channel needs capacity >= 1");
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(capacity),
            capacity,
            senders: 1,
            receiver_alive: true,
            stats: ChannelStats::default(),
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueues `value`, blocking while the channel is full. Returns the
    /// value back if the receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().expect("channel lock poisoned");
        loop {
            if !state.receiver_alive {
                return Err(SendError(value));
            }
            if state.queue.len() < state.capacity {
                state.queue.push_back(value);
                state.stats.sent += 1;
                let occupancy = state.queue.len();
                state.stats.high_water_mark = state.stats.high_water_mark.max(occupancy);
                drop(state);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state.stats.blocked_sends += 1;
            state = self
                .shared
                .not_full
                .wait(state)
                .expect("channel lock poisoned");
        }
    }

    /// Telemetry snapshot.
    pub fn stats(&self) -> ChannelStats {
        self.shared
            .state
            .lock()
            .expect("channel lock poisoned")
            .stats
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.shared
            .state
            .lock()
            .expect("channel lock poisoned")
            .senders += 1;
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel lock poisoned");
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            // Wake a receiver blocked on an empty queue so it can
            // observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeues the next message, blocking while the channel is empty.
    /// Once every sender is gone the remaining queue is drained, then
    /// [`RecvError::Disconnected`] is reported.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().expect("channel lock poisoned");
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError::Disconnected);
            }
            state = self
                .shared
                .not_empty
                .wait(state)
                .expect("channel lock poisoned");
        }
    }

    /// Dequeues the next message if one is ready, without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock().expect("channel lock poisoned");
        if let Some(value) = state.queue.pop_front() {
            drop(state);
            self.shared.not_full.notify_one();
            return Ok(value);
        }
        if state.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Telemetry snapshot.
    pub fn stats(&self) -> ChannelStats {
        self.shared
            .state
            .lock()
            .expect("channel lock poisoned")
            .stats
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel lock poisoned");
        state.receiver_alive = false;
        drop(state);
        // Senders blocked on a full queue must wake to observe the
        // disconnect instead of sleeping forever.
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_within_one_sender() {
        let (tx, rx) = bounded(8);
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..5).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn full_channel_blocks_sender_until_receiver_drains() {
        let (tx, rx) = bounded(2);
        let producer = thread::spawn(move || {
            for i in 0..100u32 {
                tx.send(i).unwrap();
            }
            tx.stats()
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        let stats = producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert!(
            stats.blocked_sends > 0,
            "a 2-slot channel under a 100-message burst must backpressure"
        );
        assert!(stats.high_water_mark <= 2, "capacity bound violated");
        assert_eq!(stats.sent, 100);
    }

    #[test]
    fn mpsc_delivers_every_message() {
        let (tx, rx) = bounded(4);
        let mut handles = Vec::new();
        for p in 0..4u64 {
            let tx = tx.clone();
            handles.push(thread::spawn(move || {
                for i in 0..50u64 {
                    tx.send(p * 1000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        for h in handles {
            h.join().unwrap();
        }
        got.sort_unstable();
        let mut want: Vec<u64> = (0..4u64)
            .flat_map(|p| (0..50u64).map(move |i| p * 1000 + i))
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn recv_reports_disconnect_after_drain() {
        let (tx, rx) = bounded(4);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError::Disconnected));
    }

    #[test]
    fn try_recv_distinguishes_empty_from_disconnected() {
        let (tx, rx) = bounded::<u8>(1);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(1).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_with_value_when_receiver_gone() {
        let (tx, rx) = bounded(1);
        drop(rx);
        match tx.send(42) {
            Err(SendError(v)) => assert_eq!(v, 42),
            Ok(()) => panic!("send must fail without a receiver"),
        }
    }

    #[test]
    fn blocked_sender_wakes_on_receiver_drop() {
        let (tx, rx) = bounded(1);
        tx.send(0).unwrap();
        let producer = thread::spawn(move || tx.send(1));
        // Give the producer time to block on the full queue, then kill
        // the receiving end: the send must fail instead of hanging.
        thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        assert!(producer.join().unwrap().is_err());
    }

    #[test]
    #[should_panic(expected = "capacity >= 1")]
    fn zero_capacity_rejected() {
        let _ = bounded::<u8>(0);
    }
}
