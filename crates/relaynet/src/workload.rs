//! The workload model: flows, stream multiplexing, arrival processes,
//! and circuit churn.
//!
//! A **flow** is one application-level request: "deliver `requested`
//! bytes to the server". Flows are the unit of byte conservation — a
//! flow survives circuit teardown and is re-attached (with its remaining
//! bytes) to the rebuilt circuit, so the sum of delivered bytes always
//! converges to the sum requested, no matter how often circuits churn
//! underneath (DESIGN.md §8).
//!
//! A **stream** is a flow's attachment to one circuit incarnation: a
//! [`torcell::ids::StreamId`] multiplexed over the circuit's single
//! `CircId`, with its own BEGIN/CONNECTED handshake, DATA byte
//! accounting, and END. A circuit carries several concurrent streams;
//! the client round-robins DATA generation across the open ones.
//!
//! A [`WorkloadSpec`] is the scenario-level knob: how many streams per
//! circuit, how their arrivals are staggered (immediate, uniformly
//! jittered, or bursty on/off "web-like"), and whether the circuit
//! churns (tears down mid-experiment and rebuilds). The spec is
//! *resolved* once, at build time, with a dedicated [`SimRng`] stream —
//! every offset and teardown point is drawn up front so the experiment
//! stays bit-identical across event-queue implementations.

use simcore::rng::SimRng;
use simcore::time::{SimDuration, SimTime};

use crate::directory::EpochDelta;

/// Index of a flow within one [`crate::network::TorNetwork`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(pub u32);

impl FlowId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for FlowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "flow#{}", self.0)
    }
}

/// Mutable record of one application-level request, tracked across
/// circuit incarnations by the network (the server side updates it as
/// DATA arrives).
#[derive(Clone, Copy, Debug)]
pub struct FlowState {
    /// Total payload bytes the application asked for.
    pub requested: u64,
    /// Payload bytes delivered to the server so far (across all circuit
    /// incarnations that carried the flow).
    pub delivered: u64,
    /// DATA cells delivered so far.
    pub cells_delivered: u64,
    /// When the flow's request was issued (first arrival at a client).
    pub arrival_at: Option<SimTime>,
    /// When the first byte reached the server.
    pub first_byte_at: Option<SimTime>,
    /// When the last requested byte reached the server.
    pub completed_at: Option<SimTime>,
    /// How many circuit incarnations have carried this flow.
    pub carried_by: u32,
}

impl FlowState {
    /// Creates a fresh flow of `requested` bytes.
    pub fn new(requested: u64) -> FlowState {
        assert!(requested > 0, "a flow must request at least one byte");
        FlowState {
            requested,
            delivered: 0,
            cells_delivered: 0,
            arrival_at: None,
            first_byte_at: None,
            completed_at: None,
            carried_by: 0,
        }
    }

    /// Bytes still owed to the server.
    pub fn remaining(&self) -> u64 {
        self.requested - self.delivered
    }

    /// Whether every requested byte has been delivered.
    pub fn complete(&self) -> bool {
        self.delivered >= self.requested
    }

    /// Request-to-last-byte latency, once complete — the per-stream
    /// completion metric the workload CDFs aggregate.
    pub fn completion_time(&self) -> Option<SimDuration> {
        match (self.arrival_at, self.completed_at) {
            (Some(a), Some(b)) => b.checked_duration_since(a),
            _ => None,
        }
    }
}

/// One flow's attachment to one circuit incarnation, as resolved at
/// build (or rebuild) time. Stream ids are 1-based and dense: stream
/// `i` of a circuit carries id `i + 1` (id 0 is the circuit-control
/// stream).
#[derive(Clone, Copy, Debug)]
pub struct StreamSpec {
    /// The flow this stream carries.
    pub flow: FlowId,
    /// Bytes to transfer on this incarnation (the flow's remaining bytes
    /// at attach time).
    pub bytes: u64,
    /// Arrival offset after the circuit's start event; the stream opens
    /// (BEGIN) only once this much simulated time has passed.
    pub offset: SimDuration,
}

/// The fully resolved workload of one circuit incarnation: which flows
/// it carries, and when (if ever) it is torn down and rebuilt.
#[derive(Clone, Debug, Default)]
pub struct CircuitWorkload {
    /// Streams multiplexed over the circuit, in stream-id order.
    pub streams: Vec<StreamSpec>,
    /// Pending teardown points: `teardown_after[0]` fires this many
    /// simulated time units after this incarnation starts; the rest are
    /// inherited by successive rebuilds. Empty = this incarnation runs
    /// to natural completion (the final cycle).
    pub teardown_after: Vec<SimDuration>,
    /// Pause between an incarnation's full teardown (all slots
    /// reclaimed) and the successor's build.
    pub rebuild_delay: SimDuration,
}

impl CircuitWorkload {
    /// A single bulk transfer, started immediately, never churned — the
    /// workload every pre-existing scenario maps to.
    pub fn bulk(flow: FlowId, bytes: u64) -> CircuitWorkload {
        CircuitWorkload {
            streams: vec![StreamSpec {
                flow,
                bytes,
                offset: SimDuration::ZERO,
            }],
            teardown_after: Vec::new(),
            rebuild_delay: SimDuration::ZERO,
        }
    }

    /// Sum of bytes across all attached streams.
    pub fn total_bytes(&self) -> u64 {
        self.streams.iter().map(|s| s.bytes).sum()
    }
}

/// How stream arrivals are spread over time after the circuit starts.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum ArrivalSpec {
    /// Every stream is requested the moment the circuit starts.
    #[default]
    Immediate,
    /// Each stream's arrival is drawn uniformly from `[0, max_ms]`
    /// after circuit start — staggered, uncorrelated requests.
    UniformJitter {
        /// Upper bound of the stagger window (milliseconds).
        max_ms: f64,
    },
    /// Bursty on/off "web-like" pattern: streams arrive in bursts of
    /// `burst`; between bursts the client is off for a gap drawn
    /// uniformly from `gap_ms` (think: page load → quiet → next click).
    OnOff {
        /// Streams issued back-to-back per on-period.
        burst: usize,
        /// Off-period range between bursts (milliseconds).
        gap_ms: (f64, f64),
    },
}

/// When and how often a circuit is torn down and rebuilt.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnSpec {
    /// Teardown point, drawn uniformly from this range (milliseconds
    /// after the incarnation starts). Shorter than the transfer ⇒ the
    /// DESTROY races in-flight DATA cells.
    pub teardown_after_ms: (f64, f64),
    /// Delay between full teardown and the rebuild (milliseconds).
    pub rebuild_delay_ms: f64,
    /// Number of teardown/rebuild cycles. The incarnation after the
    /// last rebuild runs to completion, so no requested byte is ever
    /// abandoned.
    pub cycles: u32,
}

/// Scenario-level workload knob: streams per circuit, their arrival
/// process, and optional churn. `Default` reproduces the pre-workload
/// behaviour exactly: one immediate bulk stream, no churn.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Concurrent streams multiplexed over each circuit. The circuit's
    /// payload bytes are split evenly across them.
    pub streams_per_circuit: usize,
    /// Arrival process for the streams.
    pub arrival: ArrivalSpec,
    /// Teardown/rebuild behaviour; `None` = circuits live forever.
    pub churn: Option<ChurnSpec>,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            streams_per_circuit: 1,
            arrival: ArrivalSpec::Immediate,
            churn: None,
        }
    }
}

impl WorkloadSpec {
    /// Splits `file_bytes` across the configured stream count (spread
    /// evenly, remainder on the first stream).
    pub fn split_bytes(&self, file_bytes: u64) -> Vec<u64> {
        let n = self.streams_per_circuit.max(1) as u64;
        assert!(
            file_bytes >= n,
            "cannot split {file_bytes} bytes across {n} streams"
        );
        let each = file_bytes / n;
        let mut out = vec![each; n as usize];
        out[0] += file_bytes - each * n;
        out
    }

    /// Resolves the spec into a concrete [`CircuitWorkload`]: draws
    /// every arrival offset and teardown point from `rng`, registering
    /// each stream's flow through `register_flow` (the network hands
    /// out [`FlowId`]s).
    pub fn resolve(
        &self,
        file_bytes: u64,
        rng: &mut SimRng,
        mut register_flow: impl FnMut(u64) -> FlowId,
    ) -> CircuitWorkload {
        let bytes = self.split_bytes(file_bytes);
        let offsets = self.arrival_offsets(bytes.len(), rng);
        let streams = bytes
            .into_iter()
            .zip(offsets)
            .map(|(b, offset)| StreamSpec {
                flow: register_flow(b),
                bytes: b,
                offset,
            })
            .collect();
        let (teardown_after, rebuild_delay) = match self.churn {
            None => (Vec::new(), SimDuration::ZERO),
            Some(churn) => {
                let (lo, hi) = churn.teardown_after_ms;
                assert!(lo > 0.0 && hi >= lo, "teardown range must be positive");
                let points = (0..churn.cycles)
                    .map(|_| {
                        let ms = if hi > lo { rng.range_f64(lo, hi) } else { lo };
                        SimDuration::from_secs_f64(ms / 1e3)
                    })
                    .collect();
                (
                    points,
                    SimDuration::from_secs_f64(churn.rebuild_delay_ms.max(0.0) / 1e3),
                )
            }
        };
        CircuitWorkload {
            streams,
            teardown_after,
            rebuild_delay,
        }
    }

    fn arrival_offsets(&self, n: usize, rng: &mut SimRng) -> Vec<SimDuration> {
        match self.arrival {
            ArrivalSpec::Immediate => vec![SimDuration::ZERO; n],
            ArrivalSpec::UniformJitter { max_ms } => (0..n)
                .map(|_| {
                    let ms = if max_ms > 0.0 {
                        rng.range_f64(0.0, max_ms)
                    } else {
                        0.0
                    };
                    SimDuration::from_secs_f64(ms / 1e3)
                })
                .collect(),
            ArrivalSpec::OnOff { burst, gap_ms } => {
                let burst = burst.max(1);
                let (lo, hi) = gap_ms;
                let mut at = SimDuration::ZERO;
                (0..n)
                    .map(|i| {
                        if i > 0 && i % burst == 0 {
                            let ms = if hi > lo { rng.range_f64(lo, hi) } else { lo };
                            at += SimDuration::from_secs_f64(ms.max(0.0) / 1e3);
                        }
                        at
                    })
                    .collect()
            }
        }
    }
}

/// Scenario-level knob for consensus epoch churn: how often the
/// directory publishes a delta, how many relays move per epoch, and how
/// large the standby (dark) pool is. Like [`WorkloadSpec`], the spec is
/// resolved once at build time with a dedicated [`SimRng`] stream, so
/// the whole join/leave schedule is drawn up front and the run stays
/// bit-identical across event-queue implementations.
///
/// The relay universe is fixed at provisioning time (every relay keeps
/// its access link); epochs only toggle *liveness*. A fraction of the
/// universe starts dark as the standby pool new joiners are drawn from
/// — the membership-as-a-stream shape of real consensus documents.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpochSpec {
    /// Simulated time between consecutive epoch boundaries (ms).
    pub interval_ms: f64,
    /// Number of epoch boundaries to schedule.
    pub epochs: u32,
    /// Relays leaving (and, standby pool permitting, joining) per epoch.
    pub churn: usize,
    /// Fraction of the provisioned universe that starts dark, forming
    /// the standby pool joiners are drawn from. Clamped to `[0, 0.9]`.
    pub standby_fraction: f64,
}

impl Default for EpochSpec {
    fn default() -> Self {
        EpochSpec {
            interval_ms: 200.0,
            epochs: 3,
            churn: 2,
            standby_fraction: 0.2,
        }
    }
}

/// The fully resolved epoch schedule: which relays start dark, and one
/// [`EpochDelta`] per boundary.
#[derive(Clone, Debug, Default)]
pub struct EpochSchedule {
    /// Relays dark at t=0 (the initial standby pool).
    pub initial_dark: Vec<u32>,
    /// Directory deltas, in boundary order.
    pub deltas: Vec<EpochDelta>,
}

impl EpochSpec {
    /// The epoch interval as a [`SimDuration`].
    pub fn interval(&self) -> SimDuration {
        assert!(
            self.interval_ms > 0.0,
            "epoch interval must be positive, got {} ms",
            self.interval_ms
        );
        SimDuration::from_secs_f64(self.interval_ms / 1e3)
    }

    /// Draws the whole join/leave schedule for a `relays`-sized
    /// universe. Departures are clamped so at least `min_live` relays
    /// stay live after every epoch (circuits must keep finding paths);
    /// joins are drawn from the relays dark *before* the boundary, so a
    /// relay never leaves and rejoins in the same delta.
    pub fn resolve(&self, relays: usize, min_live: usize, rng: &mut SimRng) -> EpochSchedule {
        assert!(relays > 0, "an epoch schedule needs relays");
        assert!(
            min_live <= relays,
            "cannot keep {min_live} relays live out of {relays}"
        );
        let standby = ((relays as f64) * self.standby_fraction.clamp(0.0, 0.9)) as usize;
        let standby = standby.min(relays - min_live);
        let initial_dark: Vec<u32> = rng
            .sample_distinct(relays, standby)
            .into_iter()
            .map(|r| r as u32)
            .collect();
        // Track the live/dark partition while drawing, so each delta is
        // consistent with the state the run will actually be in.
        let mut dark: Vec<u32> = initial_dark.clone();
        let mut live: Vec<u32> = (0..relays as u32).filter(|r| !dark.contains(r)).collect();
        let mut deltas = Vec::with_capacity(self.epochs as usize);
        for _ in 0..self.epochs {
            // Joins first, from the pool dark before this boundary.
            let joins = self.churn.min(dark.len());
            let mut join = Vec::with_capacity(joins);
            for _ in 0..joins {
                let i = rng.range_usize(0, dark.len());
                join.push(dark.swap_remove(i));
            }
            // Leaves are drawn from the *pre-join* live set — a relay
            // never joins and leaves in the same delta — clamped so the
            // post-epoch population keeps the floor.
            let leaves = self
                .churn
                .min((live.len() + join.len()).saturating_sub(min_live))
                .min(live.len());
            let mut leave = Vec::with_capacity(leaves);
            for _ in 0..leaves {
                let i = rng.range_usize(0, live.len());
                leave.push(live.swap_remove(i));
            }
            live.extend_from_slice(&join);
            dark.extend_from_slice(&leave);
            deltas.push(EpochDelta { leave, join });
        }
        EpochSchedule {
            initial_dark,
            deltas,
        }
    }
}

/// Scenario-level knob for fault injection: how many relays crash (and
/// when), how many transient link stalls occur, and how the client's
/// detection/recovery machinery is tuned. Like [`EpochSpec`], the spec
/// is resolved once at build time with a dedicated [`SimRng`] stream —
/// a fault-free configuration derives no stream and stays bit-identical
/// to a build from before faults existed.
///
/// Crashes are *silent*: from the crash instant the relay drops every
/// frame addressed to it — no DESTROY, no omniscient teardown. Clients
/// learn of the failure only through their own timers (the detection
/// knobs below) and recover by abandoning the circuit, blaming the
/// suspect hop, and rebuilding around it under exponential backoff.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultSpec {
    /// Relays that crash, drawn distinct from the crashable set.
    pub crashes: usize,
    /// Crash instants, drawn uniformly from this window (ms).
    pub crash_window_ms: (f64, f64),
    /// Transient link stalls to inject (a relay's access link drops to
    /// a trickle, then restores — the "slow relay" failure mode).
    pub stalls: usize,
    /// Stall onset window (ms).
    pub stall_window_ms: (f64, f64),
    /// How long each stall lasts (ms).
    pub stall_duration_ms: f64,
    /// Rate divisor while stalled: the link runs at `rate / factor`.
    pub stall_factor: f64,
    /// Build-completion timer: a circuit not fully established this long
    /// after its build started is abandoned (ms).
    pub build_timeout_ms: f64,
    /// Liveness timer: an established circuit whose end-to-end progress
    /// counter has not advanced over this long is declared stalled (ms).
    pub liveness_timeout_ms: f64,
    /// Backoff base: the first retry waits this long (ms).
    pub backoff_base_ms: f64,
    /// Uniform jitter added on top of the exponential delay (ms).
    pub backoff_jitter_ms: f64,
    /// Ceiling on the exponential delay, pre-jitter (ms).
    pub backoff_cap_ms: f64,
    /// Timeouts a circuit may absorb before its flows are parked rather
    /// than retried again.
    pub max_retries: u32,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            crashes: 1,
            crash_window_ms: (50.0, 150.0),
            stalls: 0,
            stall_window_ms: (50.0, 150.0),
            stall_duration_ms: 40.0,
            stall_factor: 100.0,
            build_timeout_ms: 150.0,
            liveness_timeout_ms: 250.0,
            backoff_base_ms: 10.0,
            backoff_jitter_ms: 5.0,
            backoff_cap_ms: 320.0,
            max_retries: 6,
        }
    }
}

/// One transient link stall, fully resolved: relay `relay`'s access
/// link drops to a fraction of its provisioned rate at `at`, restoring
/// `duration` later. The builder maps the relay to its link and rates
/// and schedules the pair as [`crate::event::TorEvent::SetLinkRate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkStall {
    /// Stall onset.
    pub at: SimDuration,
    /// How long the link stays throttled.
    pub duration: SimDuration,
    /// The relay whose access link stalls.
    pub relay: u32,
}

/// The fully resolved fault schedule: every crash instant, victim, and
/// stall drawn up front from the dedicated stream.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    /// `(crash instant, relay)` pairs, in draw order.
    pub crashes: Vec<(SimDuration, u32)>,
    /// Transient stalls, in draw order.
    pub stalls: Vec<LinkStall>,
}

impl FaultSpec {
    /// The build-completion timeout as a duration.
    pub fn build_timeout(&self) -> SimDuration {
        assert!(
            self.build_timeout_ms > 0.0,
            "build timeout must be positive"
        );
        SimDuration::from_secs_f64(self.build_timeout_ms / 1e3)
    }

    /// The liveness timeout as a duration.
    pub fn liveness_timeout(&self) -> SimDuration {
        assert!(
            self.liveness_timeout_ms > 0.0,
            "liveness timeout must be positive"
        );
        SimDuration::from_secs_f64(self.liveness_timeout_ms / 1e3)
    }

    /// The backoff law: retry `retry` waits
    /// `min(base · 2^retry, cap) + jitter_frac · jitter`, with
    /// `jitter_frac` drawn from `[0, 1)` by the caller (the network owns
    /// the jitter stream so fault-free runs never consume it).
    pub fn backoff(&self, retry: u32, jitter_frac: f64) -> SimDuration {
        let base = self.backoff_base_ms.max(0.0);
        let exp = base * f64::powi(2.0, retry.min(24) as i32);
        let capped = exp.min(self.backoff_cap_ms.max(base));
        let jitter = self.backoff_jitter_ms.max(0.0) * jitter_frac.clamp(0.0, 1.0);
        SimDuration::from_secs_f64((capped + jitter) / 1e3)
    }

    /// Draws the whole fault schedule. `candidates` are the relays that
    /// may crash or stall (the builder passes the initially-live set so
    /// faults hit relays that matter); victims are distinct, so a relay
    /// crashes at most once. Crash counts clamp to the candidate pool.
    pub fn resolve(&self, candidates: &[u32], rng: &mut SimRng) -> FaultSchedule {
        if candidates.is_empty() {
            return FaultSchedule::default();
        }
        let window = |range: (f64, f64), rng: &mut SimRng| {
            let (lo, hi) = range;
            assert!(lo >= 0.0 && hi >= lo, "fault window must be ordered");
            let ms = if hi > lo { rng.range_f64(lo, hi) } else { lo };
            SimDuration::from_secs_f64(ms / 1e3)
        };
        let n = self.crashes.min(candidates.len());
        let crashes = rng
            .sample_distinct(candidates.len(), n)
            .into_iter()
            .map(|i| (window(self.crash_window_ms, rng), candidates[i]))
            .collect();
        let stalls = (0..self.stalls)
            .map(|_| {
                let relay = candidates[rng.range_usize(0, candidates.len())];
                LinkStall {
                    at: window(self.stall_window_ms, rng),
                    duration: SimDuration::from_secs_f64(self.stall_duration_ms.max(0.0) / 1e3),
                    relay,
                }
            })
            .collect();
        FaultSchedule { crashes, stalls }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resolve(spec: &WorkloadSpec, bytes: u64, seed: u64) -> CircuitWorkload {
        let mut rng = SimRng::seed_from(seed);
        let mut next = 0u32;
        spec.resolve(bytes, &mut rng, |_| {
            next += 1;
            FlowId(next - 1)
        })
    }

    #[test]
    fn default_spec_is_one_immediate_bulk_stream() {
        let wl = resolve(&WorkloadSpec::default(), 10_000, 1);
        assert_eq!(wl.streams.len(), 1);
        assert_eq!(wl.streams[0].bytes, 10_000);
        assert_eq!(wl.streams[0].offset, SimDuration::ZERO);
        assert!(wl.teardown_after.is_empty());
        assert_eq!(wl.total_bytes(), 10_000);
    }

    #[test]
    fn bytes_split_evenly_with_remainder_on_first() {
        let spec = WorkloadSpec {
            streams_per_circuit: 3,
            ..Default::default()
        };
        assert_eq!(spec.split_bytes(10), vec![4, 3, 3]);
        let wl = resolve(&spec, 100_001, 2);
        assert_eq!(wl.total_bytes(), 100_001);
        assert_eq!(wl.streams.len(), 3);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn split_rejects_more_streams_than_bytes() {
        let spec = WorkloadSpec {
            streams_per_circuit: 8,
            ..Default::default()
        };
        spec.split_bytes(4);
    }

    #[test]
    fn jitter_offsets_are_bounded_and_seeded() {
        let spec = WorkloadSpec {
            streams_per_circuit: 6,
            arrival: ArrivalSpec::UniformJitter { max_ms: 50.0 },
            ..Default::default()
        };
        let a = resolve(&spec, 60_000, 7);
        let b = resolve(&spec, 60_000, 7);
        for (x, y) in a.streams.iter().zip(&b.streams) {
            assert_eq!(x.offset, y.offset, "same seed, same offsets");
            assert!(x.offset <= SimDuration::from_millis(50));
        }
        assert!(
            a.streams.iter().any(|s| s.offset > SimDuration::ZERO),
            "jitter must actually stagger"
        );
    }

    #[test]
    fn onoff_bursts_share_offsets_and_gaps_accumulate() {
        let spec = WorkloadSpec {
            streams_per_circuit: 6,
            arrival: ArrivalSpec::OnOff {
                burst: 2,
                gap_ms: (5.0, 5.0),
            },
            ..Default::default()
        };
        let wl = resolve(&spec, 60_000, 3);
        let offs: Vec<_> = wl.streams.iter().map(|s| s.offset).collect();
        assert_eq!(offs[0], offs[1], "burst members arrive together");
        assert_eq!(offs[2], offs[3]);
        assert_eq!(offs[2], SimDuration::from_millis(5));
        assert_eq!(offs[4], SimDuration::from_millis(10));
    }

    #[test]
    fn churn_draws_one_teardown_per_cycle() {
        let spec = WorkloadSpec {
            streams_per_circuit: 2,
            arrival: ArrivalSpec::Immediate,
            churn: Some(ChurnSpec {
                teardown_after_ms: (10.0, 30.0),
                rebuild_delay_ms: 2.0,
                cycles: 3,
            }),
        };
        let wl = resolve(&spec, 50_000, 11);
        assert_eq!(wl.teardown_after.len(), 3);
        for &t in &wl.teardown_after {
            assert!(t >= SimDuration::from_millis(10) && t <= SimDuration::from_millis(30));
        }
        assert_eq!(wl.rebuild_delay, SimDuration::from_millis(2));
    }

    #[test]
    fn epoch_schedule_is_consistent_and_seeded() {
        let spec = EpochSpec {
            interval_ms: 100.0,
            epochs: 8,
            churn: 3,
            standby_fraction: 0.25,
        };
        let a = spec.resolve(40, 10, &mut SimRng::seed_from(5));
        let b = spec.resolve(40, 10, &mut SimRng::seed_from(5));
        assert_eq!(a.initial_dark, b.initial_dark, "same seed, same schedule");
        assert_eq!(a.deltas, b.deltas);
        assert_eq!(a.deltas.len(), 8);
        // Replay the schedule and check the invariants: live floor held,
        // no join from the live set, no leave from the dark set, no
        // relay both joining and leaving in one delta.
        let mut live = [true; 40];
        for &r in &a.initial_dark {
            live[r as usize] = false;
        }
        for delta in &a.deltas {
            for &j in &delta.join {
                assert!(!live[j as usize], "join drawn from a live relay");
                assert!(!delta.leave.contains(&j), "join and leave in one delta");
                live[j as usize] = true;
            }
            for &l in &delta.leave {
                assert!(live[l as usize], "leave drawn from a dark relay");
                live[l as usize] = false;
            }
            let alive = live.iter().filter(|&&x| x).count();
            assert!(alive >= 10, "live floor violated: {alive}");
        }
    }

    #[test]
    fn epoch_schedule_clamps_when_the_pool_runs_dry() {
        // No standby pool and a floor right at the starting population:
        // nothing can ever leave, and nothing can join.
        let spec = EpochSpec {
            interval_ms: 50.0,
            epochs: 4,
            churn: 5,
            standby_fraction: 0.0,
        };
        let sched = spec.resolve(12, 12, &mut SimRng::seed_from(9));
        assert!(sched.initial_dark.is_empty());
        assert!(sched.deltas.iter().all(|d| d.is_empty()));
    }

    #[test]
    fn fault_schedule_is_distinct_bounded_and_seeded() {
        let spec = FaultSpec {
            crashes: 4,
            crash_window_ms: (20.0, 80.0),
            stalls: 3,
            stall_window_ms: (10.0, 40.0),
            stall_duration_ms: 15.0,
            ..Default::default()
        };
        let candidates: Vec<u32> = (0..12).filter(|r| r % 2 == 0).collect();
        let a = spec.resolve(&candidates, &mut SimRng::seed_from(21));
        let b = spec.resolve(&candidates, &mut SimRng::seed_from(21));
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.crashes.len(), 4);
        let mut victims: Vec<u32> = a.crashes.iter().map(|&(_, r)| r).collect();
        victims.sort_unstable();
        victims.dedup();
        assert_eq!(victims.len(), 4, "a relay crashes at most once");
        for &(at, r) in &a.crashes {
            assert!(candidates.contains(&r), "victim outside the candidates");
            assert!(at >= SimDuration::from_millis(20) && at <= SimDuration::from_millis(80));
        }
        assert_eq!(a.stalls.len(), 3);
        for s in &a.stalls {
            assert!(candidates.contains(&s.relay));
            assert!(s.at >= SimDuration::from_millis(10) && s.at <= SimDuration::from_millis(40));
            assert_eq!(s.duration, SimDuration::from_millis(15));
        }
    }

    #[test]
    fn fault_schedule_clamps_to_the_candidate_pool() {
        let spec = FaultSpec {
            crashes: 10,
            ..Default::default()
        };
        let sched = spec.resolve(&[3, 7], &mut SimRng::seed_from(2));
        assert_eq!(sched.crashes.len(), 2, "clamped to the pool");
        let empty = spec.resolve(&[], &mut SimRng::seed_from(2));
        assert!(empty.crashes.is_empty() && empty.stalls.is_empty());
    }

    #[test]
    fn backoff_law_is_exponential_capped_and_jittered() {
        let spec = FaultSpec {
            backoff_base_ms: 10.0,
            backoff_jitter_ms: 4.0,
            backoff_cap_ms: 100.0,
            ..Default::default()
        };
        assert_eq!(spec.backoff(0, 0.0), SimDuration::from_millis(10));
        assert_eq!(spec.backoff(1, 0.0), SimDuration::from_millis(20));
        assert_eq!(spec.backoff(3, 0.0), SimDuration::from_millis(80));
        // Capped: 10 · 2^4 = 160 → 100.
        assert_eq!(spec.backoff(4, 0.0), SimDuration::from_millis(100));
        assert_eq!(spec.backoff(30, 0.0), SimDuration::from_millis(100));
        // Jitter rides on top of the cap.
        assert_eq!(spec.backoff(4, 1.0), SimDuration::from_millis(104));
        assert_eq!(spec.backoff(0, 0.5), SimDuration::from_millis(12));
    }

    #[test]
    fn flow_state_accounting() {
        let mut f = FlowState::new(1000);
        assert_eq!(f.remaining(), 1000);
        assert!(!f.complete());
        f.delivered = 1000;
        assert!(f.complete());
        f.arrival_at = Some(SimTime::from_millis(5));
        f.completed_at = Some(SimTime::from_millis(105));
        assert_eq!(f.completion_time(), Some(SimDuration::from_millis(100)));
    }
}
