//! Micro-benchmarks for the simulation kernel (P1 in DESIGN.md §5): raw
//! event throughput bounds how large an overlay experiment the
//! reproduction can run.

use cs_bench::harness::Report;
use simcore::event::{EventQueue, QueueKind};
use simcore::prelude::*;

/// A world that keeps `fanout` self-rescheduling event chains alive.
struct Churn {
    remaining: u64,
}

impl World for Churn {
    type Event = u32;
    fn handle(&mut self, ctx: &mut Context<'_, u32>, chain: u32) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.schedule_in(SimDuration::from_micros(u64::from(chain % 7 + 1)), chain);
        }
    }
}

fn bench_event_loop(report: &mut Report) {
    for &chains in &[1u32, 16, 256] {
        report.bench_with_rate(
            &format!("simcore/event_loop/events_100k/{chains}"),
            100_000.0,
            "events/s",
            || {
                let mut sim = Simulator::new(Churn { remaining: 100_000 });
                for chain in 0..chains {
                    sim.schedule_at(SimTime::ZERO, chain);
                }
                sim.run();
                assert!(sim.events_processed() >= 100_000);
            },
        );
    }
    // The legacy binary-heap queue, kept as the differential oracle: its
    // trajectory documents what the calendar queue buys.
    report.bench_with_rate(
        "simcore/event_loop/events_100k/256/heap_oracle",
        100_000.0,
        "events/s",
        || {
            let mut sim =
                Simulator::with_queue(Churn { remaining: 100_000 }, QueueKind::BinaryHeap);
            for chain in 0..256u32 {
                sim.schedule_at(SimTime::ZERO, chain);
            }
            sim.run();
            assert!(sim.events_processed() >= 100_000);
        },
    );
}

fn bench_queue_ops(report: &mut Report) {
    for (kind, label) in [
        (QueueKind::Calendar, "calendar"),
        (QueueKind::BinaryHeap, "heap"),
    ] {
        report.bench(&format!("simcore/queue_push_pop_10k/{label}"), || {
            let mut q = EventQueue::with_capacity_and_kind(10_000, kind);
            let mut x: u64 = 0x9E3779B97F4A7C15;
            for i in 0..10_000u64 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                q.push(SimTime::from_nanos(x % 1_000_000), i);
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            assert_eq!(n, 10_000);
        });
    }
}

fn bench_rng(report: &mut Report) {
    let root = SimRng::seed_from(7);
    report.bench("simcore/rng_derive_and_draw", || {
        let mut r = root.derive_indexed("bench", 3);
        let mut acc = 0u64;
        for _ in 0..1_000 {
            acc = acc.wrapping_add(r.u64());
        }
        std::hint::black_box(acc);
    });
}

fn main() {
    let mut report = Report::new();
    bench_event_loop(&mut report);
    bench_queue_ops(&mut report);
    bench_rng(&mut report);
    report.finish("bench_simcore");
}
